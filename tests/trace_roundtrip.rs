//! Property tests for the binary trace format: arbitrary retirement
//! streams must survive a write→read round trip bit-identically, captures
//! of the same stream must be byte-identical, and any single-byte
//! corruption of the body must either raise a typed error or change the
//! decoded stream — silent acceptance of damaged data is the one outcome
//! the format must never produce.

use std::io::Cursor;
use std::time::Duration;

use proptest::prelude::*;
use simcore::{InstGroup, MemList, Observer, RegId, RegSet, RetiredInst};
use trace::{TraceError, TraceMeta, TraceReader, TraceWriter};

fn meta() -> TraceMeta {
    TraceMeta {
        workload: "property".into(),
        compiler: "none".into(),
        isa: "RISC-V".into(),
        size: "test".into(),
        regions: vec![],
    }
}

fn mem_list(accs: &[(u64, u8)]) -> MemList {
    let mut l = MemList::empty();
    for &(addr, size) in accs.iter().take(2) {
        l.push(addr, size);
    }
    l
}

/// One arbitrary retirement: any PC (deltas between consecutive records can
/// span the whole address space), any group, any register sets, up to two
/// memory accesses on each side.
fn inst() -> impl Strategy<Value = RetiredInst> {
    (
        any::<u64>(),
        0usize..InstGroup::ALL.len(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(0usize..65, 0..4),
        proptest::collection::vec(0usize..65, 0..4),
        proptest::collection::vec((any::<u64>(), 1u8..17), 0..3),
        proptest::collection::vec((any::<u64>(), 1u8..17), 0..3),
    )
        .prop_map(|(pc, group, is_branch, taken, srcs, dsts, reads, writes)| {
            let mut ri = RetiredInst::new(pc, InstGroup::ALL[group]);
            ri.is_branch = is_branch;
            ri.taken = is_branch && taken;
            ri.srcs = srcs.iter().map(|&i| RegId::from_index(i)).collect();
            ri.dsts = dsts.iter().map(|&i| RegId::from_index(i)).collect();
            ri.mem_reads = mem_list(&reads);
            ri.mem_writes = mem_list(&writes);
            ri
        })
}

fn stream() -> impl Strategy<Value = Vec<RetiredInst>> {
    proptest::collection::vec(inst(), 1..400)
}

fn capture(stream: &[RetiredInst], state_hash: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf, &meta()).expect("Vec writes cannot fail");
    for ri in stream {
        w.on_retire(ri);
    }
    w.finish(state_hash, Duration::ZERO).expect("Vec writes cannot fail");
    buf
}

fn header_len(bytes: &[u8]) -> usize {
    let meta_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    12 + meta_len
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_round_trip_is_bit_identical(s in stream()) {
        let bytes = capture(&s, 0x5EED);
        let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        let got: Vec<RetiredInst> =
            reader.map(|r| r.expect("clean capture must decode")).collect();
        prop_assert_eq!(got, s);
    }

    #[test]
    fn identical_streams_capture_byte_identically(s in stream()) {
        prop_assert_eq!(capture(&s, 7), capture(&s, 7));
    }

    #[test]
    fn single_byte_corruption_never_goes_unnoticed(
        s in stream(),
        flip_bit in 0u8..8,
        pos_seed in any::<u64>(),
    ) {
        let clean = capture(&s, 0xC0FFEE);
        // Damage one byte of the *body*: the meta-JSON header carries no
        // checksum (a flipped provenance byte just names a different cell),
        // so the detection guarantee starts at the first block.
        let body_start = header_len(&clean);
        let pos = body_start + (pos_seed as usize) % (clean.len() - body_start);
        let mut bad = clean.clone();
        bad[pos] ^= 1 << flip_bit;

        let outcome: Result<Vec<RetiredInst>, TraceError> =
            TraceReader::new(Cursor::new(&bad)).and_then(|r| r.collect());
        match outcome {
            Err(_) => {} // typed detection: checksum, structure, or trailer
            Ok(decoded) => prop_assert!(
                decoded != s,
                "flipping bit {} of byte {} was silently absorbed", flip_bit, pos
            ),
        }
    }
}

#[test]
fn corruption_of_every_single_block_byte_is_caught_or_visible() {
    // Exhaustive sweep over a small capture: every byte of the body,
    // lowest bit flipped.
    let s: Vec<RetiredInst> = (0..40)
        .map(|i| {
            let mut ri =
                RetiredInst::new(0x1000 + i * 4, InstGroup::ALL[(i % 18) as usize]);
            ri.srcs = RegSet::of(&[RegId::Int((i % 31) as u8 + 1)]);
            ri
        })
        .collect();
    let clean = capture(&s, 1);
    let body_start = header_len(&clean);
    for pos in body_start..clean.len() {
        let mut bad = clean.clone();
        bad[pos] ^= 1;
        let outcome: Result<Vec<RetiredInst>, TraceError> =
            TraceReader::new(Cursor::new(&bad)).and_then(|r| r.collect());
        if let Ok(decoded) = outcome {
            assert_ne!(decoded, s, "flip at byte {pos} was silently absorbed");
        }
    }
}
