//! RV64G binary decoder.

use crate::inst::*;

/// Decode error: the word is not a valid RV64G instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable reason.
    pub msg: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError { msg: msg.into() })
}

#[inline]
fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1F) as u8
}
#[inline]
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1F) as u8
}
#[inline]
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1F) as u8
}
#[inline]
fn rs3(w: u32) -> u8 {
    ((w >> 27) & 0x1F) as u8
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}

/// Sign-extended I-type immediate.
#[inline]
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}

/// Sign-extended S-type immediate.
#[inline]
fn imm_s(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64; // sign-extended imm[11:5]
    let lo = ((w >> 7) & 0x1F) as i64;
    (hi << 5) | lo
}

/// Sign-extended B-type immediate.
#[inline]
fn imm_b(w: u32) -> i64 {
    let b12 = ((w as i32) >> 31) as i64; // sign
    let b11 = ((w >> 7) & 1) as i64;
    let b10_5 = ((w >> 25) & 0x3F) as i64;
    let b4_1 = ((w >> 8) & 0xF) as i64;
    (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

/// Sign-extended U-type immediate (already shifted left 12).
#[inline]
fn imm_u(w: u32) -> i64 {
    ((w & 0xFFFF_F000) as i32) as i64
}

/// Sign-extended J-type immediate.
#[inline]
fn imm_j(w: u32) -> i64 {
    let b20 = ((w as i32) >> 31) as i64; // sign
    let b19_12 = ((w >> 12) & 0xFF) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3FF) as i64;
    (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

fn fp_width(fmt: u32) -> Result<FpWidth, DecodeError> {
    match fmt {
        0 => Ok(FpWidth::S),
        1 => Ok(FpWidth::D),
        _ => err(format!("unsupported FP fmt {fmt}")),
    }
}

fn int_ty(code: u32) -> Result<IntTy, DecodeError> {
    match code {
        0 => Ok(IntTy::W),
        1 => Ok(IntTy::Wu),
        2 => Ok(IntTy::L),
        3 => Ok(IntTy::Lu),
        _ => err(format!("unsupported fcvt integer type {code}")),
    }
}

/// Decode a 32-bit RV64G instruction word.
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    let opcode = w & 0x7F;
    match opcode {
        0b0110111 => Ok(Inst::Lui { rd: rd(w), imm: imm_u(w) }),
        0b0010111 => Ok(Inst::Auipc { rd: rd(w), imm: imm_u(w) }),
        0b1101111 => Ok(Inst::Jal { rd: rd(w), offset: imm_j(w) }),
        0b1100111 => match funct3(w) {
            0b000 => Ok(Inst::Jalr { rd: rd(w), rs1: rs1(w), offset: imm_i(w) }),
            f => err(format!("jalr funct3 {f:#b}")),
        },
        0b1100011 => {
            let op = match funct3(w) {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                f => return err(format!("branch funct3 {f:#b}")),
            };
            Ok(Inst::Branch { op, rs1: rs1(w), rs2: rs2(w), offset: imm_b(w) })
        }
        0b0000011 => {
            let op = match funct3(w) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b011 => LoadOp::Ld,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                0b110 => LoadOp::Lwu,
                f => return err(format!("load funct3 {f:#b}")),
            };
            Ok(Inst::Load { op, rd: rd(w), rs1: rs1(w), offset: imm_i(w) })
        }
        0b0100011 => {
            let op = match funct3(w) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                0b011 => StoreOp::Sd,
                f => return err(format!("store funct3 {f:#b}")),
            };
            Ok(Inst::Store { op, rs2: rs2(w), rs1: rs1(w), offset: imm_s(w) })
        }
        0b0010011 => {
            let (op, imm) = match funct3(w) {
                0b000 => (ImmOp::Addi, imm_i(w)),
                0b010 => (ImmOp::Slti, imm_i(w)),
                0b011 => (ImmOp::Sltiu, imm_i(w)),
                0b100 => (ImmOp::Xori, imm_i(w)),
                0b110 => (ImmOp::Ori, imm_i(w)),
                0b111 => (ImmOp::Andi, imm_i(w)),
                0b001 => {
                    if funct7(w) >> 1 != 0 {
                        return err("slli funct6 nonzero");
                    }
                    (ImmOp::Slli, ((w >> 20) & 0x3F) as i64)
                }
                0b101 => {
                    let shamt = ((w >> 20) & 0x3F) as i64;
                    match funct7(w) >> 1 {
                        0b000000 => (ImmOp::Srli, shamt),
                        0b010000 => (ImmOp::Srai, shamt),
                        f => return err(format!("shift-right funct6 {f:#b}")),
                    }
                }
                _ => unreachable!(),
            };
            Ok(Inst::OpImm { op, rd: rd(w), rs1: rs1(w), imm })
        }
        0b0011011 => {
            let (op, imm) = match funct3(w) {
                0b000 => (ImmOp32::Addiw, imm_i(w)),
                0b001 => {
                    if funct7(w) != 0 {
                        return err("slliw funct7 nonzero");
                    }
                    (ImmOp32::Slliw, ((w >> 20) & 0x1F) as i64)
                }
                0b101 => {
                    let shamt = ((w >> 20) & 0x1F) as i64;
                    match funct7(w) {
                        0b0000000 => (ImmOp32::Srliw, shamt),
                        0b0100000 => (ImmOp32::Sraiw, shamt),
                        f => return err(format!("shift-right-w funct7 {f:#b}")),
                    }
                }
                f => return err(format!("op-imm-32 funct3 {f:#b}")),
            };
            Ok(Inst::OpImm32 { op, rd: rd(w), rs1: rs1(w), imm })
        }
        0b0110011 => {
            let op = match (funct7(w), funct3(w)) {
                (0b0000000, 0b000) => RegOp::Add,
                (0b0100000, 0b000) => RegOp::Sub,
                (0b0000000, 0b001) => RegOp::Sll,
                (0b0000000, 0b010) => RegOp::Slt,
                (0b0000000, 0b011) => RegOp::Sltu,
                (0b0000000, 0b100) => RegOp::Xor,
                (0b0000000, 0b101) => RegOp::Srl,
                (0b0100000, 0b101) => RegOp::Sra,
                (0b0000000, 0b110) => RegOp::Or,
                (0b0000000, 0b111) => RegOp::And,
                (0b0000001, 0b000) => RegOp::Mul,
                (0b0000001, 0b001) => RegOp::Mulh,
                (0b0000001, 0b010) => RegOp::Mulhsu,
                (0b0000001, 0b011) => RegOp::Mulhu,
                (0b0000001, 0b100) => RegOp::Div,
                (0b0000001, 0b101) => RegOp::Divu,
                (0b0000001, 0b110) => RegOp::Rem,
                (0b0000001, 0b111) => RegOp::Remu,
                (f7, f3) => return err(format!("op funct7/3 {f7:#b}/{f3:#b}")),
            };
            Ok(Inst::Op { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) })
        }
        0b0111011 => {
            let op = match (funct7(w), funct3(w)) {
                (0b0000000, 0b000) => RegOp32::Addw,
                (0b0100000, 0b000) => RegOp32::Subw,
                (0b0000000, 0b001) => RegOp32::Sllw,
                (0b0000000, 0b101) => RegOp32::Srlw,
                (0b0100000, 0b101) => RegOp32::Sraw,
                (0b0000001, 0b000) => RegOp32::Mulw,
                (0b0000001, 0b100) => RegOp32::Divw,
                (0b0000001, 0b101) => RegOp32::Divuw,
                (0b0000001, 0b110) => RegOp32::Remw,
                (0b0000001, 0b111) => RegOp32::Remuw,
                (f7, f3) => return err(format!("op-32 funct7/3 {f7:#b}/{f3:#b}")),
            };
            Ok(Inst::Op32 { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) })
        }
        0b0001111 => Ok(Inst::Fence),
        0b1110011 => match (w >> 20) & 0xFFF {
            0 => Ok(Inst::Ecall),
            1 => Ok(Inst::Ebreak),
            imm => err(format!("system imm {imm:#x}")),
        },
        0b0101111 => {
            let width = match funct3(w) {
                0b010 => AmoWidth::W,
                0b011 => AmoWidth::D,
                f => return err(format!("amo funct3 {f:#b}")),
            };
            let f5 = funct7(w) >> 2;
            match f5 {
                0b00010 => {
                    if rs2(w) != 0 {
                        return err("lr with nonzero rs2");
                    }
                    Ok(Inst::Lr { width, rd: rd(w), rs1: rs1(w) })
                }
                0b00011 => Ok(Inst::Sc { width, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }),
                _ => {
                    let op = match f5 {
                        0b00000 => AmoOp::Add,
                        0b00001 => AmoOp::Swap,
                        0b00100 => AmoOp::Xor,
                        0b01000 => AmoOp::Or,
                        0b01100 => AmoOp::And,
                        0b10000 => AmoOp::Min,
                        0b10100 => AmoOp::Max,
                        0b11000 => AmoOp::Minu,
                        0b11100 => AmoOp::Maxu,
                        f => return err(format!("amo funct5 {f:#b}")),
                    };
                    Ok(Inst::Amo { op, width, rd: rd(w), rs1: rs1(w), rs2: rs2(w) })
                }
            }
        }
        0b0000111 => {
            let width = match funct3(w) {
                0b010 => FpWidth::S,
                0b011 => FpWidth::D,
                f => return err(format!("fp-load funct3 {f:#b}")),
            };
            Ok(Inst::FpLoad { width, frd: rd(w), rs1: rs1(w), offset: imm_i(w) })
        }
        0b0100111 => {
            let width = match funct3(w) {
                0b010 => FpWidth::S,
                0b011 => FpWidth::D,
                f => return err(format!("fp-store funct3 {f:#b}")),
            };
            Ok(Inst::FpStore { width, frs2: rs2(w), rs1: rs1(w), offset: imm_s(w) })
        }
        0b1000011 | 0b1000111 | 0b1001011 | 0b1001111 => {
            let op = match opcode {
                0b1000011 => FmaOp::Fmadd,
                0b1000111 => FmaOp::Fmsub,
                0b1001011 => FmaOp::Fnmsub,
                _ => FmaOp::Fnmadd,
            };
            let width = fp_width((w >> 25) & 0x3)?;
            Ok(Inst::FpFma {
                op,
                width,
                frd: rd(w),
                frs1: rs1(w),
                frs2: rs2(w),
                frs3: rs3(w),
            })
        }
        0b1010011 => decode_op_fp(w),
        _ => err(format!("unknown opcode {opcode:#09b}")),
    }
}

fn decode_op_fp(w: u32) -> Result<Inst, DecodeError> {
    let f7 = funct7(w);
    let fmt = f7 & 0x3;
    let width = fp_width(fmt)?;
    let f3 = funct3(w);
    match f7 >> 2 {
        0b00000 => Ok(Inst::FpReg { op: FpOp::Fadd, width, frd: rd(w), frs1: rs1(w), frs2: rs2(w) }),
        0b00001 => Ok(Inst::FpReg { op: FpOp::Fsub, width, frd: rd(w), frs1: rs1(w), frs2: rs2(w) }),
        0b00010 => Ok(Inst::FpReg { op: FpOp::Fmul, width, frd: rd(w), frs1: rs1(w), frs2: rs2(w) }),
        0b00011 => Ok(Inst::FpReg { op: FpOp::Fdiv, width, frd: rd(w), frs1: rs1(w), frs2: rs2(w) }),
        0b01011 => {
            if rs2(w) != 0 {
                return err("fsqrt with nonzero rs2");
            }
            Ok(Inst::FpSqrt { width, frd: rd(w), frs1: rs1(w) })
        }
        0b00100 => {
            let op = match f3 {
                0b000 => FpOp::Fsgnj,
                0b001 => FpOp::Fsgnjn,
                0b010 => FpOp::Fsgnjx,
                f => return err(format!("fsgnj funct3 {f:#b}")),
            };
            Ok(Inst::FpReg { op, width, frd: rd(w), frs1: rs1(w), frs2: rs2(w) })
        }
        0b00101 => {
            let op = match f3 {
                0b000 => FpOp::Fmin,
                0b001 => FpOp::Fmax,
                f => return err(format!("fmin/fmax funct3 {f:#b}")),
            };
            Ok(Inst::FpReg { op, width, frd: rd(w), frs1: rs1(w), frs2: rs2(w) })
        }
        0b10100 => {
            let op = match f3 {
                0b000 => FpCmpOp::Fle,
                0b001 => FpCmpOp::Flt,
                0b010 => FpCmpOp::Feq,
                f => return err(format!("fcmp funct3 {f:#b}")),
            };
            Ok(Inst::FpCmp { op, width, rd: rd(w), frs1: rs1(w), frs2: rs2(w) })
        }
        0b11000 => Ok(Inst::FcvtIntFromFp {
            ty: int_ty(rs2(w) as u32)?,
            width,
            rd: rd(w),
            frs1: rs1(w),
        }),
        0b11010 => Ok(Inst::FcvtFpFromInt {
            ty: int_ty(rs2(w) as u32)?,
            width,
            frd: rd(w),
            rs1: rs1(w),
        }),
        0b01000 => {
            let from = fp_width(rs2(w) as u32)?;
            if from == width {
                return err("fcvt between identical FP widths");
            }
            Ok(Inst::FcvtFpFp { to: width, from, frd: rd(w), frs1: rs1(w) })
        }
        0b11100 => match f3 {
            0b000 => {
                if rs2(w) != 0 {
                    return err("fmv.x with nonzero rs2");
                }
                Ok(Inst::FmvToInt { width, rd: rd(w), frs1: rs1(w) })
            }
            0b001 => Ok(Inst::Fclass { width, rd: rd(w), frs1: rs1(w) }),
            f => err(format!("fmv.x/fclass funct3 {f:#b}")),
        },
        0b11110 => {
            if f3 != 0 || rs2(w) != 0 {
                return err("fmv to fp with nonzero funct3/rs2");
            }
            Ok(Inst::FmvToFp { width, frd: rd(w), rs1: rs1(w) })
        }
        f => err(format!("op-fp funct5 {f:#b}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_golden_words() {
        assert_eq!(
            decode(0x0000_0013).unwrap(),
            Inst::OpImm { op: ImmOp::Addi, rd: 0, rs1: 0, imm: 0 }
        );
        assert_eq!(
            decode(0xFE87_9CE3).unwrap(),
            Inst::Branch { op: BranchOp::Bne, rs1: 15, rs2: 8, offset: -8 }
        );
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(
            decode(0x0007_B787).unwrap(),
            Inst::FpLoad { width: FpWidth::D, frd: 15, rs1: 15, offset: 0 }
        );
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi a0, a0, -1
        let w = encode(&Inst::OpImm { op: ImmOp::Addi, rd: 10, rs1: 10, imm: -1 });
        assert_eq!(
            decode(w).unwrap(),
            Inst::OpImm { op: ImmOp::Addi, rd: 10, rs1: 10, imm: -1 }
        );
        // sd with negative offset
        let w = encode(&Inst::Store { op: StoreOp::Sd, rs2: 1, rs1: 2, offset: -16 });
        assert_eq!(
            decode(w).unwrap(),
            Inst::Store { op: StoreOp::Sd, rs2: 1, rs1: 2, offset: -16 }
        );
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
    }
}
