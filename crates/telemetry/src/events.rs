//! Bounded structured event log.
//!
//! Failure-path diagnostics (cell retries, watchdog trips, fault
//! injections) used to go to stderr as ad-hoc `eprintln!` lines —
//! unparseable and unbounded. An [`EventLog`] is a fixed-capacity ring of
//! structured [`Event`]s: emitting is cheap and never allocates beyond the
//! ring, the oldest events are dropped (and counted) under pressure, and
//! the whole log drains to JSON Lines for post-run analysis.
//!
//! ```
//! use telemetry::events::EventLog;
//! use telemetry::Json;
//! let log = EventLog::with_capacity(2);
//! log.emit("cell_retry", &[("cell", Json::Str("STREAM/RISC-V".into()))]);
//! log.emit("watchdog_trip", &[("limit_ms", Json::Num(2000.0))]);
//! log.emit("cell_retry", &[]); // ring is full: the oldest event drops
//! assert_eq!(log.len(), 2);
//! assert_eq!(log.dropped(), 1);
//! let jsonl = log.to_jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! ```

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// One structured event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number (counts all events ever emitted, including
    /// later-dropped ones — gaps at the front reveal ring overflow).
    pub seq: u64,
    /// Microseconds since the log was created.
    pub t_us: u64,
    /// Event kind (`"cell_retry"`, `"watchdog_trip"`, `"fault_injected"`, ...).
    pub kind: String,
    /// Kind-specific payload, order preserved.
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// JSON object: `seq`, `t_us`, `kind`, then the payload fields.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("t_us".to_string(), Json::Num(self.t_us as f64)),
            ("kind".to_string(), Json::Str(self.kind.clone())),
        ];
        members.extend(self.fields.iter().cloned());
        Json::Obj(members)
    }
}

#[derive(Default)]
struct LogInner {
    ring: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Fixed-capacity, thread-safe ring of [`Event`]s.
pub struct EventLog {
    epoch: Instant,
    cap: usize,
    inner: Mutex<LogInner>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// Default ring capacity. Failure events are rare; a campaign that
    /// overflows this is itself a diagnostic (see [`EventLog::dropped`]).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Log with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Log holding at most `cap` events (minimum 1); older events drop first.
    pub fn with_capacity(cap: usize) -> Self {
        EventLog { epoch: Instant::now(), cap: cap.max(1), inner: Mutex::new(LogInner::default()) }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn emit(&self, kind: &str, fields: &[(&str, Json)]) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(Event {
            seq,
            t_us,
            kind: kind.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted (held + dropped).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Copy of the events currently held, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Remove and return all held events, oldest first. The sequence
    /// counter keeps running, so later events stay globally ordered.
    pub fn drain(&self) -> Vec<Event> {
        self.inner.lock().unwrap().ring.drain(..).collect()
    }

    /// JSON Lines rendering of the held events (one compact object per
    /// line), without draining.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.to_json().compact());
            out.push('\n');
        }
        out
    }

    /// Drain the log to `path` as JSON Lines. Writes nothing (and creates
    /// no file) when the log is empty; returns how many events were written.
    pub fn drain_to_file(&self, path: &Path) -> std::io::Result<usize> {
        let events = self.drain();
        if events.is_empty() {
            return Ok(0);
        }
        let mut f = std::fs::File::create(path)?;
        for e in &events {
            writeln!(f, "{}", e.to_json().compact())?;
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_snapshot_and_sequences() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.emit("a", &[("x", Json::Num(1.0))]);
        log.emit("b", &[]);
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(events[1].t_us >= events[0].t_us);
        assert_eq!(events[0].fields[0].0, "x");
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let log = EventLog::with_capacity(3);
        for i in 0..10 {
            log.emit("e", &[("i", Json::Num(i as f64))]);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total(), 10);
        assert_eq!(log.dropped(), 7);
        // Survivors are the newest three, in order.
        let seqs: Vec<u64> = log.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let log = EventLog::new();
        log.emit("watchdog_trip", &[("limit_ms", Json::Num(2000.0)), ("cell", Json::Str("LBM/RISC-V".into()))]);
        log.emit("cell_retry", &[("attempt", Json::Num(2.0))]);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let j = Json::parse(line).expect("each line is standalone JSON");
            assert!(j.get("kind").unwrap().as_str().is_some());
            assert!(j.get("seq").unwrap().as_u64().is_some());
        }
        assert!(lines[0].contains("\"watchdog_trip\""));
        // to_jsonl does not drain...
        assert_eq!(log.len(), 2);
        // ...drain does.
        assert_eq!(log.drain().len(), 2);
        assert!(log.is_empty());
        assert_eq!(log.total(), 2, "sequence counter survives a drain");
    }

    #[test]
    fn drain_to_file_skips_empty_logs() {
        let dir = std::env::temp_dir().join("telemetry-events-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        std::fs::remove_file(&path).ok();
        let log = EventLog::new();
        assert_eq!(log.drain_to_file(&path).unwrap(), 0);
        assert!(!path.exists(), "empty drain must not create a file");
        log.emit("fault_injected", &[("kind", Json::Str("trap".into()))]);
        assert_eq!(log.drain_to_file(&path).unwrap(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("fault_injected"));
        std::fs::remove_file(&path).ok();
    }
}
