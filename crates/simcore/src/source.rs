//! A generic source of retired-instruction events.
//!
//! Every analysis in this reproduction consumes the same retirement stream,
//! but the stream can come from more than one place: a live
//! [`EmulationCore`](crate::EmulationCore) run, a replayed on-disk trace
//! (the `trace` crate), or an in-memory record list in tests. The
//! [`RetireSource`] trait abstracts over all of them so an analysis pass is
//! written once and driven from whichever source is cheapest.

use crate::error::SimError;
use crate::observer::Observer;
use crate::retire::RetiredInst;

/// Something that can stream retired instructions, in program order, into a
/// set of [`Observer`]s.
///
/// Implementations: a live emulation run (`isacmp::LiveSource`), a replayed
/// trace (`trace::TraceReader`), or any slice of records (below).
pub trait RetireSource {
    /// Pump every remaining retirement through `observers` (calling
    /// [`Observer::on_finish`] at the end), returning the number of
    /// instructions delivered.
    fn drive(&mut self, observers: &mut [&mut dyn Observer]) -> Result<u64, SimError>;

    /// Short label for diagnostics ("live", "trace", ...).
    fn source_name(&self) -> &'static str {
        "source"
    }
}

/// In-memory record lists are sources too — handy for tests and for
/// re-analyzing a stream that was buffered anyway.
impl RetireSource for &[RetiredInst] {
    fn drive(&mut self, observers: &mut [&mut dyn Observer]) -> Result<u64, SimError> {
        for ri in self.iter() {
            for obs in observers.iter_mut() {
                obs.on_retire(ri);
            }
        }
        for obs in observers.iter_mut() {
            obs.on_finish();
        }
        Ok(self.len() as u64)
    }

    fn source_name(&self) -> &'static str {
        "slice"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CountingObserver;
    use crate::retire::InstGroup;

    #[test]
    fn slice_source_drives_observers() {
        let records: Vec<RetiredInst> =
            (0..7).map(|i| RetiredInst::new(i * 4, InstGroup::IntAlu)).collect();
        let mut count = CountingObserver::default();
        let mut src: &[RetiredInst] = &records;
        let n = {
            let mut obs: Vec<&mut dyn Observer> = vec![&mut count];
            src.drive(&mut obs).unwrap()
        };
        assert_eq!(n, 7);
        assert_eq!(count.retired, 7);
    }
}
