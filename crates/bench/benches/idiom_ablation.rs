//! Experiment E6: ablation of the codegen idioms the paper's §3.3 and §7
//! analyse (register-offset addressing, post-indexing, fused
//! compare-and-branch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isacmp::{compile, execute, IsaKind, PathLength, Personality, SizeClass, Workload};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("idiom_ablation");
    group.sample_size(10);
    let base = Personality::gcc122();
    let mut post = base;
    post.arm_post_index = true;
    let mut noreg = base;
    noreg.arm_register_offset = false;
    let mut nofuse = base;
    nofuse.riscv_fused_compare_branch = false;

    let variants: [(&str, IsaKind, Personality); 5] = [
        ("arm-register-offset", IsaKind::AArch64, base),
        ("arm-post-index", IsaKind::AArch64, post),
        ("arm-pointer-bump", IsaKind::AArch64, noreg),
        ("riscv-fused-cb", IsaKind::RiscV, base),
        ("riscv-unfused-cb", IsaKind::RiscV, nofuse),
    ];
    for (name, isa, p) in variants {
        let prog = Workload::Stream.build(SizeClass::Test);
        let compiled = compile(&prog, isa, &p);
        let mut pl = PathLength::new(&compiled.program.regions);
        execute(&compiled, &mut [&mut pl]);
        println!("# ablation: {name} path_length={}", pl.total());
        group.bench_with_input(BenchmarkId::new("stream", name), &compiled, |b, compiled| {
            b.iter(|| {
                let mut pl = PathLength::new(&compiled.program.regions);
                execute(compiled, &mut [&mut pl]);
                pl.total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
