//! A64 binary decoder (scalar subset).
//!
//! Decoding follows the architectural top-level grouping on bits 28:25,
//! then the per-group fields from the Arm ARM.

use crate::bitmask::decode_bitmask;
use crate::inst::*;

/// Decode error: the word is not an instruction in the supported subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable reason.
    pub msg: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError { msg: msg.into() })
}

#[inline]
fn rd(w: u32) -> u8 {
    (w & 0x1F) as u8
}
#[inline]
fn rn(w: u32) -> u8 {
    ((w >> 5) & 0x1F) as u8
}
#[inline]
fn rm(w: u32) -> u8 {
    ((w >> 16) & 0x1F) as u8
}
#[inline]
fn ra(w: u32) -> u8 {
    ((w >> 10) & 0x1F) as u8
}
#[inline]
fn sf(w: u32) -> bool {
    w >> 31 != 0
}

/// Sign-extend the low `bits` bits of `v`.
#[inline]
fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v as u64) << shift) as i64 >> shift
}

fn shift_type(b: u32) -> ShiftType {
    match b & 3 {
        0 => ShiftType::Lsl,
        1 => ShiftType::Lsr,
        2 => ShiftType::Asr,
        _ => ShiftType::Ror,
    }
}

fn mem_size_from(size: u32, opc: u32) -> Result<(MemSize, bool), DecodeError> {
    // Returns (size, is_load).
    match (size, opc) {
        (0b00, 0b00) => Ok((MemSize::B, false)),
        (0b00, 0b01) => Ok((MemSize::B, true)),
        (0b00, 0b10) => Ok((MemSize::Sb, true)),
        (0b01, 0b00) => Ok((MemSize::H, false)),
        (0b01, 0b01) => Ok((MemSize::H, true)),
        (0b01, 0b10) => Ok((MemSize::Sh, true)),
        (0b10, 0b00) => Ok((MemSize::W, false)),
        (0b10, 0b01) => Ok((MemSize::W, true)),
        (0b10, 0b10) => Ok((MemSize::Sw, true)),
        (0b11, 0b00) => Ok((MemSize::X, false)),
        (0b11, 0b01) => Ok((MemSize::X, true)),
        _ => err(format!("load/store size/opc {size:#b}/{opc:#b}")),
    }
}

fn fp_size_from(size: u32) -> Result<FpSize, DecodeError> {
    match size {
        0b10 => Ok(FpSize::S),
        0b11 => Ok(FpSize::D),
        _ => err(format!("FP load/store size {size:#b}")),
    }
}

fn fp_type_from(t: u32) -> Result<FpSize, DecodeError> {
    match t {
        0b00 => Ok(FpSize::S),
        0b01 => Ok(FpSize::D),
        _ => err(format!("FP type {t:#b}")),
    }
}

/// Decode a 32-bit A64 instruction word.
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    if w == 0xD503_201F {
        return Ok(Inst::Nop);
    }
    if w & 0xFFE0_001F == 0xD400_0001 {
        return Ok(Inst::Svc { imm16: ((w >> 5) & 0xFFFF) as u16 });
    }
    if w & 0xFFE0_001F == 0xD420_0000 {
        return Ok(Inst::Brk { imm16: ((w >> 5) & 0xFFFF) as u16 });
    }
    match (w >> 25) & 0xF {
        0b1000 | 0b1001 => decode_dp_imm(w),
        0b1010 | 0b1011 => decode_branch(w),
        0b0100 | 0b0110 | 0b1100 | 0b1110 => decode_loadstore(w),
        0b0101 | 0b1101 => decode_dp_reg(w),
        0b0111 | 0b1111 => decode_fp(w),
        op0 => err(format!("unallocated op0 {op0:#06b}")),
    }
}

fn decode_dp_imm(w: u32) -> Result<Inst, DecodeError> {
    match (w >> 23) & 0x7 {
        0b000 | 0b001 => {
            // ADR / ADRP
            let immlo = (w >> 29) & 0x3;
            let immhi = (w >> 5) & 0x7_FFFF;
            let imm21 = sext((immhi << 2) | immlo, 21);
            if w >> 31 == 0 {
                Ok(Inst::Adr { rd: rd(w), offset: imm21 })
            } else {
                Ok(Inst::Adrp { rd: rd(w), offset: imm21 << 12 })
            }
        }
        0b010 => {
            let sub = (w >> 30) & 1 != 0;
            let set_flags = (w >> 29) & 1 != 0;
            let shift12 = (w >> 22) & 1 != 0;
            Ok(Inst::AddSubImm {
                sub,
                set_flags,
                sf: sf(w),
                rd: rd(w),
                rn: rn(w),
                imm12: ((w >> 10) & 0xFFF) as u16,
                shift12,
            })
        }
        0b100 => {
            let opc = (w >> 29) & 3;
            let op = match opc {
                0b00 => LogicOp::And,
                0b01 => LogicOp::Orr,
                0b10 => LogicOp::Eor,
                _ => LogicOp::Ands,
            };
            let n = (w >> 22) & 1;
            if !sf(w) && n != 0 {
                return err("logical imm with sf=0, N=1");
            }
            let imm = decode_bitmask(sf(w), n, (w >> 16) & 0x3F, (w >> 10) & 0x3F)
                .ok_or_else(|| DecodeError { msg: "reserved bitmask immediate".into() })?;
            Ok(Inst::LogicalImm { op, sf: sf(w), rd: rd(w), rn: rn(w), imm })
        }
        0b101 => {
            let opc = (w >> 29) & 3;
            let op = match opc {
                0b00 => MovOp::Movn,
                0b10 => MovOp::Movz,
                0b11 => MovOp::Movk,
                _ => return err("move-wide opc 01"),
            };
            let hw = ((w >> 21) & 3) as u8;
            if !sf(w) && hw > 1 {
                return err("move-wide hw > 1 with sf=0");
            }
            Ok(Inst::MovWide { op, sf: sf(w), rd: rd(w), imm16: ((w >> 5) & 0xFFFF) as u16, hw })
        }
        0b110 => {
            let opc = (w >> 29) & 3;
            let op = match opc {
                0b00 => BitfieldOp::Sbfm,
                0b01 => BitfieldOp::Bfm,
                0b10 => BitfieldOp::Ubfm,
                _ => return err("bitfield opc 11"),
            };
            let n = (w >> 22) & 1;
            if n != u32::from(sf(w)) {
                return err("bitfield N != sf");
            }
            let immr = ((w >> 16) & 0x3F) as u8;
            let imms = ((w >> 10) & 0x3F) as u8;
            if !sf(w) && (immr > 31 || imms > 31) {
                return err("bitfield immr/imms out of range for 32-bit");
            }
            Ok(Inst::Bitfield { op, sf: sf(w), rd: rd(w), rn: rn(w), immr, imms })
        }
        0b111 => {
            // EXTR
            if (w >> 29) & 3 != 0 || (w >> 21) & 1 != 0 {
                return err("extract opc/o0 unallocated");
            }
            let n = (w >> 22) & 1;
            if n != u32::from(sf(w)) {
                return err("extr N != sf");
            }
            let lsb = ((w >> 10) & 0x3F) as u8;
            if !sf(w) && lsb > 31 {
                return err("extr lsb out of range for 32-bit");
            }
            Ok(Inst::Extr { sf: sf(w), rd: rd(w), rn: rn(w), rm: rm(w), lsb })
        }
        g => err(format!("dp-imm group {g:#b}")),
    }
}

fn decode_branch(w: u32) -> Result<Inst, DecodeError> {
    if (w >> 26) & 0x1F == 0b00101 {
        let link = w >> 31 != 0;
        return Ok(Inst::B { link, offset: sext(w & 0x03FF_FFFF, 26) << 2 });
    }
    if w >> 24 == 0b0101_0100 && w & 0x10 == 0 {
        return Ok(Inst::BCond {
            cond: Cond::from_bits(w & 0xF),
            offset: sext((w >> 5) & 0x7_FFFF, 19) << 2,
        });
    }
    if (w >> 25) & 0x3F == 0b011010 {
        return Ok(Inst::Cbz {
            nonzero: (w >> 24) & 1 != 0,
            sf: sf(w),
            rt: rd(w),
            offset: sext((w >> 5) & 0x7_FFFF, 19) << 2,
        });
    }
    if (w >> 25) & 0x3F == 0b011011 {
        let bit = (((w >> 31) & 1) << 5 | ((w >> 19) & 0x1F)) as u8;
        return Ok(Inst::Tbz {
            nonzero: (w >> 24) & 1 != 0,
            rt: rd(w),
            bit,
            offset: sext((w >> 5) & 0x3FFF, 14) << 2,
        });
    }
    match w & 0xFFFF_FC1F {
        0xD61F_0000 => return Ok(Inst::BrReg { link: false, ret: false, rn: rn(w) }),
        0xD63F_0000 => return Ok(Inst::BrReg { link: true, ret: false, rn: rn(w) }),
        0xD65F_0000 => return Ok(Inst::BrReg { link: false, ret: true, rn: rn(w) }),
        _ => {}
    }
    err(format!("unsupported branch/system word {w:#010x}"))
}

fn decode_loadstore(w: u32) -> Result<Inst, DecodeError> {
    match (w >> 27) & 0x7 {
        0b101 => {
            // Load/store pair.
            let opc = w >> 30;
            let v = (w >> 26) & 1;
            if v != 0 {
                return err("FP register pairs not in subset");
            }
            let sf = match opc {
                0b10 => true,
                0b00 => false,
                _ => return err(format!("ldp/stp opc {opc:#b}")),
            };
            let mode = match (w >> 23) & 0x3 {
                0b01 => Some(IndexMode::Post),
                0b10 => None,
                0b11 => Some(IndexMode::Pre),
                _ => return err("ldp/stp non-temporal not in subset"),
            };
            let load = (w >> 22) & 1 != 0;
            let imm7 = sext((w >> 15) & 0x7F, 7) as i16;
            let (rt, rt2, rn) = (rd(w), ra(w), rn(w));
            Ok(if load {
                Inst::Ldp { sf, mode, rt, rt2, rn, imm7 }
            } else {
                Inst::Stp { sf, mode, rt, rt2, rn, imm7 }
            })
        }
        0b111 => {
            let size = w >> 30;
            let v = (w >> 26) & 1;
            let opc = (w >> 22) & 3;
            if (w >> 24) & 3 == 0b01 {
                // Unsigned immediate offset.
                let imm12 = ((w >> 10) & 0xFFF) as u16;
                if v == 1 {
                    let fsz = fp_size_from(size)?;
                    return Ok(match opc {
                        0b01 => Inst::LdrFpImm { size: fsz, rt: rd(w), rn: rn(w), imm12 },
                        0b00 => Inst::StrFpImm { size: fsz, rt: rd(w), rn: rn(w), imm12 },
                        _ => return err("FP load/store opc"),
                    });
                }
                let (msz, load) = mem_size_from(size, opc)?;
                return Ok(if load {
                    Inst::LdrImm { size: msz, rt: rd(w), rn: rn(w), imm12 }
                } else {
                    Inst::StrImm { size: msz, rt: rd(w), rn: rn(w), imm12 }
                });
            }
            if (w >> 24) & 3 == 0b00 {
                if (w >> 21) & 1 == 1 {
                    // Register offset (bits 11:10 must be 10).
                    if (w >> 10) & 3 != 0b10 {
                        return err("register-offset load/store bits 11:10");
                    }
                    let extend = Extend::from_bits((w >> 13) & 7);
                    if !matches!(extend, Extend::Uxtw | Extend::Uxtx | Extend::Sxtw | Extend::Sxtx)
                    {
                        return err("register-offset extend option");
                    }
                    let shift = (w >> 12) & 1 != 0;
                    if v == 1 {
                        let fsz = fp_size_from(size)?;
                        return Ok(match opc {
                            0b01 => Inst::LdrFpReg {
                                size: fsz,
                                rt: rd(w),
                                rn: rn(w),
                                rm: rm(w),
                                extend,
                                shift,
                            },
                            0b00 => Inst::StrFpReg {
                                size: fsz,
                                rt: rd(w),
                                rn: rn(w),
                                rm: rm(w),
                                extend,
                                shift,
                            },
                            _ => return err("FP reg-offset opc"),
                        });
                    }
                    let (msz, load) = mem_size_from(size, opc)?;
                    return Ok(if load {
                        Inst::LdrReg { size: msz, rt: rd(w), rn: rn(w), rm: rm(w), extend, shift }
                    } else {
                        Inst::StrReg { size: msz, rt: rd(w), rn: rn(w), rm: rm(w), extend, shift }
                    });
                }
                // Immediate 9-bit forms.
                let mode = match (w >> 10) & 3 {
                    0b00 => IndexMode::Unscaled,
                    0b01 => IndexMode::Post,
                    0b11 => IndexMode::Pre,
                    _ => return err("unprivileged load/store not in subset"),
                };
                let simm9 = sext((w >> 12) & 0x1FF, 9) as i16;
                if v == 1 {
                    let fsz = fp_size_from(size)?;
                    return Ok(match opc {
                        0b01 => Inst::LdrFpIdx { size: fsz, mode, rt: rd(w), rn: rn(w), simm9 },
                        0b00 => Inst::StrFpIdx { size: fsz, mode, rt: rd(w), rn: rn(w), simm9 },
                        _ => return err("FP indexed opc"),
                    });
                }
                let (msz, load) = mem_size_from(size, opc)?;
                return Ok(if load {
                    Inst::LdrIdx { size: msz, mode, rt: rd(w), rn: rn(w), simm9 }
                } else {
                    Inst::StrIdx { size: msz, mode, rt: rd(w), rn: rn(w), simm9 }
                });
            }
            err("load/store sub-group not in subset")
        }
        g => err(format!("load/store group {g:#b}")),
    }
}

fn decode_dp_reg(w: u32) -> Result<Inst, DecodeError> {
    let op_bits = (w >> 24) & 0x1F; // bits 28:24
    if op_bits == 0b01011 {
        let sub = (w >> 30) & 1 != 0;
        let set_flags = (w >> 29) & 1 != 0;
        if (w >> 21) & 1 == 0 {
            // Shifted register.
            let shift = shift_type((w >> 22) & 3);
            if shift == ShiftType::Ror {
                return err("add/sub shifted with ROR");
            }
            let amount = ((w >> 10) & 0x3F) as u8;
            if !sf(w) && amount > 31 {
                return err("shift amount > 31 with sf=0");
            }
            return Ok(Inst::AddSubShifted {
                sub,
                set_flags,
                sf: sf(w),
                rd: rd(w),
                rn: rn(w),
                rm: rm(w),
                shift,
                amount,
            });
        }
        // Extended register: bits 23:22 must be 00.
        if (w >> 22) & 3 != 0 {
            return err("add/sub extended opt != 00");
        }
        let amount = ((w >> 10) & 0x7) as u8;
        if amount > 4 {
            return err("extended-register shift > 4");
        }
        return Ok(Inst::AddSubExtended {
            sub,
            set_flags,
            sf: sf(w),
            rd: rd(w),
            rn: rn(w),
            rm: rm(w),
            extend: Extend::from_bits((w >> 13) & 7),
            amount,
        });
    }
    if op_bits == 0b01010 {
        let opc = (w >> 29) & 3;
        let n = (w >> 21) & 1;
        let op = match (opc, n) {
            (0b00, 0) => LogicOp::And,
            (0b00, 1) => LogicOp::Bic,
            (0b01, 0) => LogicOp::Orr,
            (0b01, 1) => LogicOp::Orn,
            (0b10, 0) => LogicOp::Eor,
            (0b10, 1) => LogicOp::Eon,
            (0b11, 0) => LogicOp::Ands,
            _ => LogicOp::Bics,
        };
        let amount = ((w >> 10) & 0x3F) as u8;
        if !sf(w) && amount > 31 {
            return err("logical shift amount > 31 with sf=0");
        }
        return Ok(Inst::LogicalShifted {
            op,
            sf: sf(w),
            rd: rd(w),
            rn: rn(w),
            rm: rm(w),
            shift: shift_type((w >> 22) & 3),
            amount,
        });
    }
    if op_bits == 0b11011 {
        // 3-source.
        let op31 = (w >> 21) & 0x7;
        let o0 = (w >> 15) & 1;
        let top = (w >> 29) & 3;
        if top != 0 {
            return err("dp-3source opc54 != 00");
        }
        match op31 {
            0b000 => {
                return Ok(Inst::MulAdd {
                    sub: o0 != 0,
                    sf: sf(w),
                    rd: rd(w),
                    rn: rn(w),
                    rm: rm(w),
                    ra: ra(w),
                })
            }
            0b001 | 0b101 => {
                if !sf(w) {
                    return err("maddl requires sf=1");
                }
                return Ok(Inst::MulAddLong {
                    sub: o0 != 0,
                    unsigned: op31 == 0b101,
                    rd: rd(w),
                    rn: rn(w),
                    rm: rm(w),
                    ra: ra(w),
                });
            }
            0b010 | 0b110 => {
                if !sf(w) || o0 != 0 || ra(w) != 0b11111 {
                    return err("mulh encoding");
                }
                return Ok(Inst::MulHigh {
                    unsigned: op31 == 0b110,
                    rd: rd(w),
                    rn: rn(w),
                    rm: rm(w),
                });
            }
            _ => return err(format!("dp-3source op31 {op31:#b}")),
        }
    }
    if (w >> 21) & 0xFF == 0b11010110 && (w >> 29) & 3 == 0b00 {
        // 2-source.
        let opcode = (w >> 10) & 0x3F;
        match opcode {
            0b000010 => {
                return Ok(Inst::Div {
                    unsigned: true,
                    sf: sf(w),
                    rd: rd(w),
                    rn: rn(w),
                    rm: rm(w),
                })
            }
            0b000011 => {
                return Ok(Inst::Div {
                    unsigned: false,
                    sf: sf(w),
                    rd: rd(w),
                    rn: rn(w),
                    rm: rm(w),
                })
            }
            0b001000..=0b001011 => {
                let op = match opcode & 3 {
                    0 => ShiftVOp::Lslv,
                    1 => ShiftVOp::Lsrv,
                    2 => ShiftVOp::Asrv,
                    _ => ShiftVOp::Rorv,
                };
                return Ok(Inst::ShiftV { op, sf: sf(w), rd: rd(w), rn: rn(w), rm: rm(w) });
            }
            _ => return err(format!("dp-2source opcode {opcode:#b}")),
        }
    }
    if (w >> 21) & 0xFF == 0b11010110 && (w >> 29) & 3 == 0b10 {
        // 1-source.
        if rm(w) != 0 {
            return err("dp-1source opcode2 != 0");
        }
        let opcode = (w >> 10) & 0x3F;
        let op = match (opcode, sf(w)) {
            (0b000000, _) => Unary1Op::Rbit,
            (0b000001, _) => Unary1Op::Rev16,
            (0b000010, false) => Unary1Op::Rev,
            (0b000010, true) => Unary1Op::Rev32,
            (0b000011, true) => Unary1Op::Rev,
            (0b000100, _) => Unary1Op::Clz,
            (0b000101, _) => Unary1Op::Cls,
            _ => return err(format!("dp-1source opcode {opcode:#b}")),
        };
        return Ok(Inst::Unary1 { op, sf: sf(w), rd: rd(w), rn: rn(w) });
    }
    if (w >> 21) & 0xFF == 0b11010100 && (w >> 29) & 1 == 0 {
        // Conditional select.
        let o = (w >> 30) & 1;
        let op2 = (w >> 10) & 3;
        let op = match (o, op2) {
            (0, 0b00) => CselOp::Csel,
            (0, 0b01) => CselOp::Csinc,
            (1, 0b00) => CselOp::Csinv,
            (1, 0b01) => CselOp::Csneg,
            _ => return err("csel op2"),
        };
        return Ok(Inst::CondSel {
            op,
            sf: sf(w),
            rd: rd(w),
            rn: rn(w),
            rm: rm(w),
            cond: Cond::from_bits((w >> 12) & 0xF),
        });
    }
    if (w >> 21) & 0xFF == 0b11010010 && (w >> 29) & 1 == 1 {
        // Conditional compare.
        if (w >> 10) & 1 != 0 || (w >> 4) & 1 != 0 {
            return err("ccmp o2/o3");
        }
        let negative = (w >> 30) & 1 == 0; // op=0 is CCMN
        let nzcv = (w & 0xF) as u8;
        let cond = Cond::from_bits((w >> 12) & 0xF);
        if (w >> 11) & 1 == 1 {
            return Ok(Inst::CondCmpImm {
                negative,
                sf: sf(w),
                rn: rn(w),
                imm5: rm(w),
                nzcv,
                cond,
            });
        }
        return Ok(Inst::CondCmpReg { negative, sf: sf(w), rn: rn(w), rm: rm(w), nzcv, cond });
    }
    err(format!("unsupported dp-reg word {w:#010x}"))
}

fn decode_fp(w: u32) -> Result<Inst, DecodeError> {
    if (w >> 24) & 0x7F == 0b0011111 {
        // 3-source FMA.
        let size = fp_type_from((w >> 22) & 3)?;
        let o1 = (w >> 21) & 1;
        let o0 = (w >> 15) & 1;
        let op = match (o1, o0) {
            (0, 0) => FpFmaOp::Fmadd,
            (0, 1) => FpFmaOp::Fmsub,
            (1, 0) => FpFmaOp::Fnmadd,
            _ => FpFmaOp::Fnmsub,
        };
        return Ok(Inst::FpFma { op, size, rd: rd(w), rn: rn(w), rm: rm(w), ra: ra(w) });
    }
    if (w >> 24) & 0x7F != 0b0011110 || (w >> 21) & 1 != 1 {
        return err(format!("unsupported fp word {w:#010x}"));
    }
    let size = fp_type_from((w >> 22) & 3)?;
    let bits15_10 = (w >> 10) & 0x3F;
    if bits15_10 == 0b000000 {
        // FP <-> integer.
        let rmode = (w >> 19) & 3;
        let opcode = (w >> 16) & 7;
        let sfb = sf(w);
        return match (rmode, opcode) {
            (0b00, 0b010) => {
                Ok(Inst::IntToFp { unsigned: false, sf: sfb, size, rd: rd(w), rn: rn(w) })
            }
            (0b00, 0b011) => {
                Ok(Inst::IntToFp { unsigned: true, sf: sfb, size, rd: rd(w), rn: rn(w) })
            }
            (0b11, 0b000) => {
                Ok(Inst::FpToInt { unsigned: false, sf: sfb, size, rd: rd(w), rn: rn(w) })
            }
            (0b11, 0b001) => {
                Ok(Inst::FpToInt { unsigned: true, sf: sfb, size, rd: rd(w), rn: rn(w) })
            }
            (0b00, 0b110) => {
                // fmov to int requires matching sizes (w<->s, x<->d).
                if sfb != (size == FpSize::D) {
                    return err("fmov size/sf mismatch");
                }
                Ok(Inst::FmovIntFp { to_fp: false, sf: sfb, size, rd: rd(w), rn: rn(w) })
            }
            (0b00, 0b111) => {
                if sfb != (size == FpSize::D) {
                    return err("fmov size/sf mismatch");
                }
                Ok(Inst::FmovIntFp { to_fp: true, sf: sfb, size, rd: rd(w), rn: rn(w) })
            }
            _ => err(format!("fp<->int rmode/opcode {rmode:#b}/{opcode:#b}")),
        };
    }
    if sf(w) {
        return err("fp data-processing with sf=1");
    }
    if bits15_10 == 0b001000 {
        let opcode2 = w & 0x1F;
        return match opcode2 {
            0b00000 => Ok(Inst::Fcmp { size, rn: rn(w), rm: rm(w), zero: false }),
            0b01000 => {
                if rm(w) != 0 {
                    return err("fcmp-zero with rm != 0");
                }
                Ok(Inst::Fcmp { size, rn: rn(w), rm: 0, zero: true })
            }
            _ => err(format!("fcmp opcode2 {opcode2:#b}")),
        };
    }
    if bits15_10 & 0b000111 == 0b000100 && rn(w) == 0 {
        // FMOV immediate (bits 12:10 == 100, bits 9:5 == 0).
        let imm8 = ((w >> 13) & 0xFF) as u8;
        return Ok(Inst::FmovImm { size, rd: rd(w), imm8 });
    }
    match bits15_10 & 0b11 {
        0b10 => {
            let opcode = (w >> 12) & 0xF;
            let op = match opcode {
                0b0000 => FpBinOp::Fmul,
                0b0001 => FpBinOp::Fdiv,
                0b0010 => FpBinOp::Fadd,
                0b0011 => FpBinOp::Fsub,
                0b0100 => FpBinOp::Fmax,
                0b0101 => FpBinOp::Fmin,
                0b0110 => FpBinOp::Fmaxnm,
                0b0111 => FpBinOp::Fminnm,
                0b1000 => FpBinOp::Fnmul,
                _ => return err(format!("fp binop opcode {opcode:#b}")),
            };
            Ok(Inst::FpBin { op, size, rd: rd(w), rn: rn(w), rm: rm(w) })
        }
        0b11 => Ok(Inst::Fcsel {
            size,
            rd: rd(w),
            rn: rn(w),
            rm: rm(w),
            cond: Cond::from_bits((w >> 12) & 0xF),
        }),
        0b00 if (w >> 10) & 0x1F == 0b10000 => {
            let opcode = (w >> 15) & 0x3F;
            match opcode {
                0b000000 => Ok(Inst::FpUn { op: FpUnOp::Fmov, size, rd: rd(w), rn: rn(w) }),
                0b000001 => Ok(Inst::FpUn { op: FpUnOp::Fabs, size, rd: rd(w), rn: rn(w) }),
                0b000010 => Ok(Inst::FpUn { op: FpUnOp::Fneg, size, rd: rd(w), rn: rn(w) }),
                0b000011 => Ok(Inst::FpUn { op: FpUnOp::Fsqrt, size, rd: rd(w), rn: rn(w) }),
                0b000100 | 0b000101 => {
                    let to = if opcode & 1 == 0 { FpSize::S } else { FpSize::D };
                    if to == size {
                        return err("fcvt to same precision");
                    }
                    Ok(Inst::FcvtPrec { to, from: size, rd: rd(w), rn: rn(w) })
                }
                _ => err(format!("fp 1-source opcode {opcode:#b}")),
            }
        }
        _ => err(format!("unsupported fp word {w:#010x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_golden_words() {
        assert_eq!(decode(0xD503_201F).unwrap(), Inst::Nop);
        assert_eq!(
            decode(0x8B02_0020).unwrap(),
            Inst::AddSubShifted {
                sub: false,
                set_flags: false,
                sf: true,
                rd: 0,
                rn: 1,
                rm: 2,
                shift: ShiftType::Lsl,
                amount: 0
            }
        );
        assert_eq!(
            decode(0xEB14_001F).unwrap(),
            Inst::AddSubShifted {
                sub: true,
                set_flags: true,
                sf: true,
                rd: 31,
                rn: 0,
                rm: 20,
                shift: ShiftType::Lsl,
                amount: 0
            }
        );
        assert_eq!(
            decode(0xFC60_7AC1).unwrap(),
            Inst::LdrFpReg {
                size: FpSize::D,
                rt: 1,
                rn: 22,
                rm: 0,
                extend: Extend::Uxtx,
                shift: true
            }
        );
        assert_eq!(
            decode(0x54FF_FFC1).unwrap(),
            Inst::BCond { cond: Cond::Ne, offset: -8 }
        );
    }

    #[test]
    fn negative_offsets_sign_extend() {
        let i = Inst::B { link: false, offset: -1024 };
        assert_eq!(decode(encode(&i)).unwrap(), i);
        let i = Inst::Ldp { sf: true, mode: None, rt: 0, rt2: 1, rn: 2, imm7: -64 };
        assert_eq!(decode(encode(&i)).unwrap(), i);
        let i = Inst::LdrIdx {
            size: MemSize::X,
            mode: IndexMode::Pre,
            rt: 3,
            rn: 4,
            simm9: -256,
        };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn adrp_page_offsets() {
        let i = Inst::Adrp { rd: 1, offset: 0x3000 };
        assert_eq!(decode(encode(&i)).unwrap(), i);
        let i = Inst::Adrp { rd: 1, offset: -(0x5000i64) };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xFFFF_FFFF).is_err());
    }
}
