//! Workspace root crate: hosts the runnable examples and the cross-crate
//! integration tests. The public API lives in the [`isacmp`] facade crate.

pub use isacmp;
