//! Reproduce the paper's Figure 2: mean ILP against window size for the
//! GCC 12.2 binaries of all five workloads, printed as an ASCII table plus
//! the CSV series the paper's line graph plots.
//!
//! ```sh
//! cargo run --release --example windowed_ilp
//! ```

use isacmp::{compile, execute, IsaKind, Personality, SizeClass, WindowedCp, Workload, PAPER_WINDOW_SIZES};

fn main() {
    let p = Personality::gcc122();
    let size = SizeClass::Small;

    println!("Mean ILP per window (GCC 12.2, window sizes {PAPER_WINDOW_SIZES:?})\n");
    let mut header = format!("{:<12}{:<9}", "workload", "isa");
    for w in PAPER_WINDOW_SIZES {
        header.push_str(&format!("{w:>9}"));
    }
    println!("{header}");

    let mut csv = String::from("workload,isa,window,mean_ilp\n");
    for w in Workload::ALL {
        for isa in [IsaKind::RiscV, IsaKind::AArch64] {
            let prog = w.build(size);
            let compiled = compile(&prog, isa, &p);
            let mut wcp = WindowedCp::paper();
            execute(&compiled, &mut [&mut wcp]);
            let mut row = format!("{:<12}{:<9}", w.name(), isacmp::isa_label(isa));
            for s in wcp.stats() {
                row.push_str(&format!("{:>9.2}", s.mean_ilp()));
                csv.push_str(&format!(
                    "{},{},{},{:.3}\n",
                    w.name(),
                    isacmp::isa_label(isa),
                    s.size,
                    s.mean_ilp()
                ));
            }
            println!("{row}");
        }
    }

    std::fs::create_dir_all("results").ok();
    std::fs::write("results/windowed_ilp.csv", csv).expect("write csv");
    println!("\nseries written to results/windowed_ilp.csv");
    println!(
        "\nPaper's finding to look for: RISC-V leads at small windows (<= 500),\n\
         AArch64 catches up or overtakes at larger ones; the curves track closely."
    );
}
