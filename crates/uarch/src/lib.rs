#![warn(missing_docs)]
//! Micro-architecture models: instruction-class latencies and trace-driven
//! pipeline timing.
//!
//! The latency tables mirror SimEng's yaml core descriptions. The paper's
//! scaled-critical-path experiment (§5) uses the ThunderX2 model — "a
//! classic, 4-way superscalar, OoO RISC microarchitecture, with 'typical'
//! latencies for most of its instructions" — for **both** ISAs, exactly as
//! the paper defines its RISC-V model from the TX2 latencies.
//!
//! The [`pipeline`] module implements the paper's Future Work (§8):
//! trace-driven in-order and out-of-order core models with finite
//! resources, fed by the same retirement stream as the analyses.
//!
//! ```
//! use uarch::{LatencyModel, Tx2Latency, UnitLatency};
//! use simcore::InstGroup;
//!
//! assert_eq!(UnitLatency.latency(InstGroup::FpAdd), 1);
//! assert_eq!(Tx2Latency.latency(InstGroup::FpAdd), 6); // the paper's 6x STREAM scaling
//! ```

pub mod branch;
pub mod cache;
pub mod driver;
pub mod latency;
pub mod pipeline;

pub use branch::{BimodalPredictor, BranchStats, GsharePredictor};
pub use cache::{CacheConfig, CacheModel, CacheStats};
pub use driver::run_guest;
pub use latency::{A64fxLatency, LatencyModel, LatencyTable, Tx2Latency, UnitLatency};
pub use pipeline::{InOrderCore, OoOCore, PipelineConfig, PipelineStats};
