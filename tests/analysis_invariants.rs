//! Property tests over the analysis passes, driven by randomly generated
//! retirement streams (no emulation involved — these check the analyses'
//! mathematical invariants in isolation).

use proptest::prelude::*;
use simcore::{InstGroup, Observer, RegId, RegSet, RetiredInst};

use analysis::{CriticalPath, PathLength, WindowedCp};
use uarch::{InOrderCore, OoOCore, PipelineConfig, Tx2Latency, UnitLatency};

/// Strategy: a plausible random retirement record.
fn retired_inst() -> impl Strategy<Value = RetiredInst> {
    let group = prop_oneof![
        Just(InstGroup::IntAlu),
        Just(InstGroup::IntMul),
        Just(InstGroup::Load),
        Just(InstGroup::Store),
        Just(InstGroup::FpAdd),
        Just(InstGroup::FpFma),
        Just(InstGroup::Branch),
    ];
    (
        group,
        proptest::collection::vec(0u8..32, 0..3),
        proptest::collection::vec(0u8..32, 0..2),
        proptest::option::of(0u64..64),
        proptest::option::of(0u64..64),
    )
        .prop_map(|(group, srcs, dsts, read, write)| {
            let mut ri = RetiredInst::new(0, group);
            ri.srcs = srcs.iter().map(|&r| RegId::Int(r)).collect();
            ri.dsts = dsts.iter().map(|&r| RegId::Int(r)).collect();
            if group == InstGroup::Load {
                if let Some(a) = read {
                    ri.mem_reads.push(0x1000 + a * 8, 8);
                }
            }
            if group == InstGroup::Store {
                if let Some(a) = write {
                    ri.mem_writes.push(0x1000 + a * 8, 8);
                }
            }
            ri.is_branch = group == InstGroup::Branch;
            ri
        })
}

fn stream() -> impl Strategy<Value = Vec<RetiredInst>> {
    proptest::collection::vec(retired_inst(), 1..400)
}

proptest! {
    #[test]
    fn cp_bounded_by_path_length(insts in stream()) {
        let mut cp = CriticalPath::new();
        for ri in &insts {
            cp.on_retire(ri);
        }
        let r = cp.result();
        prop_assert_eq!(r.path_length, insts.len() as u64);
        prop_assert!(r.critical_path >= 1);
        prop_assert!(r.critical_path <= r.path_length);
    }

    #[test]
    fn scaled_cp_at_least_unit_cp(insts in stream()) {
        let mut unit = CriticalPath::new();
        let mut scaled = CriticalPath::scaled(Tx2Latency);
        for ri in &insts {
            unit.on_retire(ri);
            scaled.on_retire(ri);
        }
        prop_assert!(scaled.result().critical_path >= unit.result().critical_path);
    }

    #[test]
    fn cp_monotone_under_extension(insts in stream()) {
        // Adding instructions can never shorten the critical path.
        let mut cp = CriticalPath::new();
        let mut prev = 0;
        for ri in &insts {
            cp.on_retire(ri);
            let now = cp.result().critical_path;
            prop_assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn windowed_cp_bounded_by_window(insts in stream()) {
        let mut w = WindowedCp::new(&[4, 16, 64]);
        for ri in &insts {
            w.on_retire(ri);
        }
        for s in w.stats() {
            if s.windows > 0 {
                prop_assert!(s.cp_max as usize <= s.size);
                prop_assert!(s.cp_min >= 1);
                prop_assert!(s.mean_ilp() >= 1.0 - 1e-9);
                prop_assert!(s.mean_ilp() <= s.size as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn path_length_ignores_order(insts in stream()) {
        // Total path length is permutation-invariant.
        let mut a = PathLength::new(&[]);
        let mut b = PathLength::new(&[]);
        for ri in &insts {
            a.on_retire(ri);
        }
        for ri in insts.iter().rev() {
            b.on_retire(ri);
        }
        prop_assert_eq!(a.total(), b.total());
    }

    #[test]
    fn pipelines_bounded_by_cp_and_width(insts in stream()) {
        // Any real pipeline takes at least CP cycles (with unit latency)
        // and at least len/width cycles; the in-order core is never faster
        // than the same-width OoO core with ample units.
        let mut cp = CriticalPath::new();
        let cfg = PipelineConfig { width: 2, rob: 64, fp_units: 4, int_units: 4, mem_units: 4 };
        let mut ino = InOrderCore::new(UnitLatency, cfg.clone());
        let mut ooo = OoOCore::new(UnitLatency, cfg);
        for ri in &insts {
            cp.on_retire(ri);
            ino.on_retire(ri);
            ooo.on_retire(ri);
        }
        let lower = cp.result().critical_path;
        prop_assert!(ooo.stats().cycles >= lower, "OoO below dependence bound");
        prop_assert!(ino.stats().cycles >= lower, "in-order below dependence bound");
        prop_assert!(
            ino.stats().cycles + 1 >= ooo.stats().cycles,
            "in-order ({}) beat OoO ({})",
            ino.stats().cycles,
            ooo.stats().cycles
        );
    }
}

#[test]
fn regset_iteration_order_is_slot_order() {
    let s = RegSet::of(&[RegId::Fp(2), RegId::Int(7), RegId::Flags]);
    let v: Vec<RegId> = s.iter().collect();
    assert_eq!(v, vec![RegId::Int(7), RegId::Fp(2), RegId::Flags]);
}
