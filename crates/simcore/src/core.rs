//! The single-cycle emulation core.

use std::time::{Duration, Instant};

use crate::error::SimError;
use crate::observer::Observer;
use crate::retire::RetiredInst;
use crate::state::CpuState;

/// Implemented by each ISA back-end: fetch, decode and execute exactly one
/// instruction, mutating `state` and describing what happened.
pub trait IsaExecutor {
    /// Execute the instruction at `state.pc`, advance the PC, and return the
    /// retirement record.
    fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError>;

    /// Disassemble the 32-bit word at `pc` (for diagnostics and the paper's
    /// listing-level analysis).
    fn disassemble(&self, word: u32) -> String;

    /// Short ISA name ("rv64g", "aarch64").
    fn name(&self) -> &'static str;
}

/// Statistics from one emulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired (the paper's *path length*).
    pub retired: u64,
    /// Guest exit status.
    pub exit_code: i64,
    /// Host wall-clock time spent inside the run loop.
    pub wall: Duration,
}

impl RunStats {
    /// Host emulation rate in million instructions per second.
    pub fn host_mips(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.retired as f64 / self.wall.as_secs_f64() / 1e6
        }
    }
}

/// The paper's measurement vehicle: SimEng's "emulation core model which
/// executes each instruction atomically to completion in a single cycle".
///
/// Runs a loaded [`CpuState`] until the guest exits, feeding every retired
/// instruction to the supplied observers in program order.
///
/// When the `ISACMP_PROGRESS` environment variable is set to a retirement
/// interval (or to `1` for the default of 50M), the core prints a heartbeat
/// line to stderr every interval: instructions retired and host MIPS. The
/// hot loop pays a single integer compare per retirement for this — the
/// sentinel is `u64::MAX` when disabled, so the branch never takes.
pub struct EmulationCore<E: IsaExecutor> {
    exec: E,
    /// Abort if this many instructions retire without the guest exiting.
    max_insts: u64,
    /// Heartbeat interval in retirements; `u64::MAX` disables it.
    progress_every: u64,
}

/// Default heartbeat interval when `ISACMP_PROGRESS` is set without a count.
const DEFAULT_PROGRESS_INTERVAL: u64 = 50_000_000;

fn progress_interval_from_env() -> u64 {
    match std::env::var("ISACMP_PROGRESS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) | Err(_) => u64::MAX,
            Ok(1) => DEFAULT_PROGRESS_INTERVAL,
            Ok(n) => n,
        },
        Err(_) => u64::MAX,
    }
}

impl<E: IsaExecutor> EmulationCore<E> {
    /// Default runaway-guest budget (no paper workload at our scaled sizes
    /// exceeds a few hundred million instructions).
    pub const DEFAULT_BUDGET: u64 = 5_000_000_000;

    /// Create a core around an ISA executor.
    pub fn new(exec: E) -> Self {
        EmulationCore {
            exec,
            max_insts: Self::DEFAULT_BUDGET,
            progress_every: progress_interval_from_env(),
        }
    }

    /// Override the instruction budget.
    pub fn with_budget(mut self, max_insts: u64) -> Self {
        self.max_insts = max_insts;
        self
    }

    /// Override the heartbeat interval (`u64::MAX` disables; normally taken
    /// from `ISACMP_PROGRESS`).
    pub fn with_progress(mut self, every: u64) -> Self {
        self.progress_every = every.max(1);
        self
    }

    /// Access the underlying executor (e.g. for disassembly).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Run until the guest exits, pumping retirements through `observers`.
    ///
    /// On error, `state.instret` holds the retirement count reached and
    /// `state.pc` the faulting program counter, so callers can report how
    /// far the guest got.
    pub fn run(
        &self,
        state: &mut CpuState,
        observers: &mut [&mut dyn Observer],
    ) -> Result<RunStats, SimError> {
        let start = Instant::now();
        let mut retired: u64 = 0;
        let mut next_beat = self.progress_every;
        while state.exited.is_none() {
            if retired >= self.max_insts {
                state.instret = retired;
                return Err(SimError::InstructionBudgetExceeded {
                    budget: self.max_insts,
                });
            }
            let ri = match self.exec.step(state) {
                Ok(ri) => ri,
                Err(e) => {
                    state.instret = retired;
                    return Err(e);
                }
            };
            retired += 1;
            for obs in observers.iter_mut() {
                obs.on_retire(&ri);
            }
            if retired == next_beat {
                let secs = start.elapsed().as_secs_f64();
                let mips = if secs > 0.0 { retired as f64 / secs / 1e6 } else { 0.0 };
                eprintln!(
                    "[{}] {retired} retired, {mips:.1} MIPS, pc={:#x}",
                    self.exec.name(),
                    state.pc
                );
                next_beat = next_beat.saturating_add(self.progress_every);
            }
        }
        state.instret = retired;
        for obs in observers.iter_mut() {
            obs.on_finish();
        }
        Ok(RunStats {
            retired,
            exit_code: state.exited.unwrap_or(0),
            wall: start.elapsed(),
        })
    }
}
