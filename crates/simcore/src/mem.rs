//! Sparse, paged guest memory.
//!
//! Guest images are tiny compared with the 64-bit address space, so memory
//! is a hash map of 4 KiB pages allocated on first write. Reads of unmapped
//! memory are an error ([`crate::SimError::UnmappedRead`]) — this catches
//! wild loads in generated code early, which proved valuable while bringing
//! up the two ISA back-ends. All accesses are little-endian, matching both
//! AArch64 (in its default configuration) and RISC-V.

use std::cell::Cell;
use std::collections::HashMap;

use crate::error::SimError;

/// Log2 of the page size.
const PAGE_BITS: u32 = 12;
/// Guest page size in bytes.
pub const PAGE_SIZE: usize = 1 << PAGE_BITS;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A one-shot read upset armed by the fault-injection layer: the Nth sized
/// read returns its value with one bit flipped. Interior mutability keeps
/// the read path `&self`.
#[derive(Debug)]
struct ReadFault {
    /// Sized reads left before the flip (0 = flip the next read).
    remaining: Cell<u64>,
    /// Bit to flip, reduced modulo the read width at fire time.
    bit: u32,
    fired: Cell<bool>,
}

/// Sparse paged memory with allocate-on-write semantics.
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    read_faults: Vec<ReadFault>,
}

impl Memory {
    /// Create an empty memory image.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr >> PAGE_BITS
    }

    /// Ensure the page containing `addr` exists, returning it mutably.
    #[inline]
    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    #[inline]
    fn page_ref(&self, page: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&page).map(|b| &**b)
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), SimError> {
        let mut a = addr;
        let mut done = 0usize;
        while done < buf.len() {
            let page = Self::page_of(a);
            let off = (a & OFFSET_MASK) as usize;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let p = self
                .page_ref(page)
                .ok_or(SimError::UnmappedRead { addr: a })?;
            buf[done..done + n].copy_from_slice(&p[off..off + n]);
            done += n;
            a = a.wrapping_add(n as u64);
        }
        Ok(())
    }

    /// Write `buf` starting at `addr`, allocating pages as needed.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), SimError> {
        let mut a = addr;
        let mut done = 0usize;
        while done < buf.len() {
            let page = Self::page_of(a);
            let off = (a & OFFSET_MASK) as usize;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let p = self.page_mut(page);
            p[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            a = a.wrapping_add(n as u64);
        }
        Ok(())
    }

    /// Arm a one-shot fault on the `nth` sized read from now (1-based,
    /// counting every `read_u8`..`read_u64`/`read_f64`, including
    /// instruction fetches): its returned value has `bit` (mod the read
    /// width) flipped. Stored bytes are untouched — a transient upset, the
    /// kind checksum verification must catch. Several faults can be armed
    /// at once (a multi-fault campaign); each counts reads from its own
    /// arming point and fires independently.
    pub fn arm_read_fault(&mut self, nth: u64, bit: u32) {
        self.read_faults.push(ReadFault {
            remaining: Cell::new(nth.saturating_sub(1)),
            bit,
            fired: Cell::new(false),
        });
    }

    /// True while any armed read fault has not fired yet.
    pub fn read_fault_pending(&self) -> bool {
        self.read_faults.iter().any(|f| !f.fired.get())
    }

    #[inline]
    fn apply_read_fault(&self, mut v: u64, width_bytes: usize) -> u64 {
        for f in &self.read_faults {
            if f.fired.get() {
                continue;
            }
            let left = f.remaining.get();
            if left == 0 {
                f.fired.set(true);
                v ^= 1u64 << (f.bit % (8 * width_bytes as u32));
            } else {
                f.remaining.set(left - 1);
            }
        }
        v
    }

    /// Read an unsigned little-endian integer of `SIZE` bytes.
    #[inline]
    fn read_int<const SIZE: usize>(&self, addr: u64) -> Result<u64, SimError> {
        let off = (addr & OFFSET_MASK) as usize;
        let v = if off + SIZE <= PAGE_SIZE {
            let p = self
                .page_ref(Self::page_of(addr))
                .ok_or(SimError::UnmappedRead { addr })?;
            let mut v = [0u8; 8];
            v[..SIZE].copy_from_slice(&p[off..off + SIZE]);
            u64::from_le_bytes(v)
        } else {
            let mut buf = [0u8; 8];
            self.read_bytes(addr, &mut buf[..SIZE])?;
            u64::from_le_bytes(buf)
        };
        Ok(self.apply_read_fault(v, SIZE))
    }

    /// Write the low `SIZE` bytes of `value` little-endian.
    #[inline]
    fn write_int<const SIZE: usize>(&mut self, addr: u64, value: u64) -> Result<(), SimError> {
        let off = (addr & OFFSET_MASK) as usize;
        let bytes = value.to_le_bytes();
        if off + SIZE <= PAGE_SIZE {
            let p = self.page_mut(Self::page_of(addr));
            p[off..off + SIZE].copy_from_slice(&bytes[..SIZE]);
            Ok(())
        } else {
            self.write_bytes(addr, &bytes[..SIZE])
        }
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8, SimError> {
        self.read_int::<1>(addr).map(|v| v as u8)
    }

    /// Read a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> Result<u16, SimError> {
        self.read_int::<2>(addr).map(|v| v as u16)
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> Result<u32, SimError> {
        self.read_int::<4>(addr).map(|v| v as u32)
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> Result<u64, SimError> {
        self.read_int::<8>(addr)
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), SimError> {
        self.write_int::<1>(addr, v as u64)
    }

    /// Write a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), SimError> {
        self.write_int::<2>(addr, v as u64)
    }

    /// Write a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), SimError> {
        self.write_int::<4>(addr, v as u64)
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), SimError> {
        self.write_int::<8>(addr, v)
    }

    /// Read an `f64` stored little-endian.
    pub fn read_f64(&self, addr: u64) -> Result<f64, SimError> {
        self.read_u64(addr).map(f64::from_bits)
    }

    /// Write an `f64` little-endian.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), SimError> {
        self.write_u64(addr, v.to_bits())
    }

    // --- checkpoint support -------------------------------------------------

    /// Mapped pages as `(page_index, bytes)` in ascending index order — the
    /// canonical iteration a checkpoint serializes, so identical memory
    /// images always produce identical snapshot bytes regardless of
    /// `HashMap` iteration order.
    pub fn pages_sorted(&self) -> Vec<(u64, &[u8; PAGE_SIZE])> {
        let mut pages: Vec<(u64, &[u8; PAGE_SIZE])> =
            self.pages.iter().map(|(idx, p)| (*idx, &**p)).collect();
        pages.sort_unstable_by_key(|(idx, _)| *idx);
        pages
    }

    /// Install one full page at `page_index` (restore path). Replaces any
    /// existing page.
    pub fn install_page(&mut self, page_index: u64, bytes: [u8; PAGE_SIZE]) {
        self.pages.insert(page_index, Box::new(bytes));
    }

    /// Snapshot the armed read-fault state as `(remaining, bit, fired)`
    /// triples, in arming order.
    pub fn read_fault_state(&self) -> Vec<(u64, u32, bool)> {
        self.read_faults
            .iter()
            .map(|f| (f.remaining.get(), f.bit, f.fired.get()))
            .collect()
    }

    /// Replace the armed read-fault state with a previously captured
    /// snapshot (restore path).
    pub fn restore_read_faults(&mut self, faults: &[(u64, u32, bool)]) {
        self.read_faults = faults
            .iter()
            .map(|&(remaining, bit, fired)| ReadFault {
                remaining: Cell::new(remaining),
                bit,
                fired: Cell::new(fired),
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_round_trip_all_widths() {
        let mut m = Memory::new();
        m.write_u8(0x1000, 0xAB).unwrap();
        m.write_u16(0x1008, 0xBEEF).unwrap();
        m.write_u32(0x1010, 0xDEADBEEF).unwrap();
        m.write_u64(0x1018, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(m.read_u8(0x1000).unwrap(), 0xAB);
        assert_eq!(m.read_u16(0x1008).unwrap(), 0xBEEF);
        assert_eq!(m.read_u32(0x1010).unwrap(), 0xDEADBEEF);
        assert_eq!(m.read_u64(0x1018).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn unmapped_read_is_error() {
        let m = Memory::new();
        assert!(matches!(
            m.read_u64(0x4000),
            Err(SimError::UnmappedRead { addr: 0x4000 })
        ));
    }

    #[test]
    fn write_allocates_page_reads_back_zeroes() {
        let mut m = Memory::new();
        m.write_u8(0x2000, 1).unwrap();
        // Rest of the freshly allocated page reads as zero.
        assert_eq!(m.read_u64(0x2008).unwrap(), 0);
        assert_eq!(m.mapped_pages(), 1);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (PAGE_SIZE as u64) - 3; // straddles page 0 / page 1
        m.write_u64(addr, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new();
        m.write_f64(0x3000, -1234.5e-3).unwrap();
        assert_eq!(m.read_f64(0x3000).unwrap(), -1234.5e-3);
    }

    #[test]
    fn armed_read_fault_flips_exactly_one_read() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0).unwrap();
        m.arm_read_fault(2, 3); // second read, bit 3
        assert!(m.read_fault_pending());
        assert_eq!(m.read_u64(0x1000).unwrap(), 0, "first read untouched");
        assert_eq!(m.read_u64(0x1000).unwrap(), 1 << 3, "second read flipped");
        assert!(!m.read_fault_pending());
        assert_eq!(m.read_u64(0x1000).unwrap(), 0, "one-shot: later reads clean");
        // The stored bytes were never modified.
        let mut raw = [0u8; 8];
        m.read_bytes(0x1000, &mut raw).unwrap();
        assert_eq!(raw, [0u8; 8]);
    }

    #[test]
    fn multiple_armed_read_faults_fire_independently() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0).unwrap();
        m.arm_read_fault(1, 0); // first read, bit 0
        m.arm_read_fault(3, 5); // third read, bit 5
        assert_eq!(m.read_u64(0x1000).unwrap(), 1, "first fault fires");
        assert_eq!(m.read_u64(0x1000).unwrap(), 0, "between faults: clean");
        assert_eq!(m.read_u64(0x1000).unwrap(), 1 << 5, "second fault fires");
        assert!(!m.read_fault_pending());
        assert_eq!(m.read_u64(0x1000).unwrap(), 0, "all one-shot");
    }

    #[test]
    fn coinciding_read_faults_both_flip_the_same_read() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0).unwrap();
        m.arm_read_fault(1, 0);
        m.arm_read_fault(1, 1);
        assert_eq!(m.read_u64(0x1000).unwrap(), 0b11, "both bits flip at once");
    }

    #[test]
    fn read_fault_bit_wraps_to_read_width() {
        let mut m = Memory::new();
        m.write_u8(0x10, 0).unwrap();
        m.arm_read_fault(1, 35); // 35 % 8 = bit 3 for a byte read
        assert_eq!(m.read_u8(0x10).unwrap(), 1 << 3);
    }

    #[test]
    fn page_and_fault_snapshots_round_trip() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0xAAAA).unwrap();
        m.write_u64(0x9000, 0xBBBB).unwrap();
        m.arm_read_fault(3, 7);
        let _ = m.read_u64(0x1000); // consume one read: remaining 2 -> 1
        let pages = m.pages_sorted();
        assert_eq!(pages.len(), 2);
        assert!(pages[0].0 < pages[1].0, "pages come back sorted");
        let faults = m.read_fault_state();
        assert_eq!(faults, vec![(1, 7, false)]);

        let mut back = Memory::new();
        for (idx, bytes) in pages {
            back.install_page(idx, *bytes);
        }
        back.restore_read_faults(&faults);
        // Every sized read counts: this one consumes the last remaining
        // slot, the next fires, later reads are clean (one-shot).
        assert_eq!(back.read_u64(0x9000).unwrap(), 0xBBBB);
        assert_eq!(back.read_u64(0x1000).unwrap(), 0xAAAA ^ (1 << 7));
        assert_eq!(back.read_u64(0x1000).unwrap(), 0xAAAA);
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        m.write_bytes(0xFF0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read_bytes(0xFF0, &mut back).unwrap();
        assert_eq!(back, data);
    }
}
