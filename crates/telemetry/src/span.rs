//! Hierarchical wall-clock spans.
//!
//! A [`Timeline`] records named spans with RAII guards:
//!
//! ```
//! let tl = telemetry::Timeline::new();
//! {
//!     let _outer = tl.enter("compile");
//!     let _inner = tl.enter("regalloc"); // nests under "compile"
//! }
//! assert_eq!(tl.records().len(), 2);
//! ```
//!
//! Nesting is tracked per thread (spans opened on a worker thread nest under
//! that thread's open spans, not another's), so parallel experiment cells
//! each produce their own subtree.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use crate::json::Json;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name ("compile", "emulate", ...).
    pub name: String,
    /// Index of the enclosing span in [`Timeline::records`], if nested.
    pub parent: Option<usize>,
    /// Start offset from the timeline's epoch.
    pub start: Duration,
    /// Wall-clock duration; `None` while the span is still open.
    pub dur: Option<Duration>,
    /// Small integer identifying the opening thread (0 = first seen).
    pub thread: u64,
}

#[derive(Default)]
struct TimelineInner {
    spans: Vec<SpanRecord>,
    /// Stack of open span indices, per thread.
    open: HashMap<ThreadId, Vec<usize>>,
    /// Stable small ids for threads, in order of first appearance.
    thread_ids: Vec<ThreadId>,
}

/// A thread-safe collector of hierarchical spans.
pub struct Timeline {
    epoch: Instant,
    inner: Mutex<TimelineInner>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// Fresh timeline; the epoch (time zero) is now.
    pub fn new() -> Self {
        Timeline { epoch: Instant::now(), inner: Mutex::new(TimelineInner::default()) }
    }

    /// Open a span; it closes (recording its duration) when the returned
    /// guard drops. Spans opened while another span from the same thread is
    /// open become its children.
    pub fn enter(&self, name: &str) -> SpanGuard<'_> {
        let start = self.epoch.elapsed();
        let tid = std::thread::current().id();
        let mut inner = self.inner.lock().unwrap();
        let thread = match inner.thread_ids.iter().position(|&t| t == tid) {
            Some(i) => i as u64,
            None => {
                inner.thread_ids.push(tid);
                (inner.thread_ids.len() - 1) as u64
            }
        };
        let parent = inner.open.get(&tid).and_then(|stack| stack.last().copied());
        let index = inner.spans.len();
        inner.spans.push(SpanRecord { name: name.to_string(), parent, start, dur: None, thread });
        inner.open.entry(tid).or_default().push(index);
        SpanGuard { timeline: self, index }
    }

    /// Run `f` inside a span named `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _guard = self.enter(name);
        f()
    }

    /// Snapshot of all spans recorded so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// Total duration of all *closed* spans with this name (nested spans of
    /// the same name double-count, as in any tracing system).
    pub fn total_of(&self, name: &str) -> Duration {
        self.inner
            .lock()
            .unwrap()
            .spans
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| s.dur)
            .sum()
    }

    /// Drop all recorded spans (the epoch is retained).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.spans.clear();
        inner.open.clear();
    }

    /// Indented text rendering of the span tree with millisecond timings.
    pub fn tree_string(&self) -> String {
        let spans = self.records();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        fn render(
            out: &mut String,
            spans: &[SpanRecord],
            children: &[Vec<usize>],
            i: usize,
            depth: usize,
        ) {
            let s = &spans[i];
            let dur = match s.dur {
                Some(d) => format!("{:.3} ms", d.as_secs_f64() * 1e3),
                None => "open".to_string(),
            };
            out.push_str(&format!("{}{} {}\n", "  ".repeat(depth), s.name, dur));
            for &c in &children[i] {
                render(out, spans, children, c, depth + 1);
            }
        }
        for r in roots {
            render(&mut out, &spans, &children, r, 0);
        }
        out
    }

    /// Flamegraph-style collapsed stacks: one `root;child;leaf <us>` line
    /// per unique stack, where the count is the stack's *self* time in
    /// microseconds (duration minus closed children). The output feeds
    /// standard flamegraph renderers directly.
    pub fn to_collapsed(&self) -> String {
        let tuples: Vec<(String, Option<usize>, Option<u64>)> = self
            .records()
            .into_iter()
            .map(|s| (s.name, s.parent, s.dur.map(|d| d.as_micros() as u64)))
            .collect();
        collapse_spans(&tuples)
    }

    /// JSON array of span objects (`name`, `parent`, `start_us`, `dur_us`,
    /// `thread`).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.records()
                .into_iter()
                .map(|s| {
                    Json::obj(vec![
                        ("name", Json::Str(s.name)),
                        (
                            "parent",
                            match s.parent {
                                Some(p) => Json::Num(p as f64),
                                None => Json::Null,
                            },
                        ),
                        ("start_us", Json::Num(s.start.as_micros() as f64)),
                        (
                            "dur_us",
                            match s.dur {
                                Some(d) => Json::Num(d.as_micros() as f64),
                                None => Json::Null,
                            },
                        ),
                        ("thread", Json::Num(s.thread as f64)),
                    ])
                })
                .collect(),
        )
    }
}

/// Shared collapsed-stack builder over `(name, parent, dur_us)` tuples —
/// used by [`Timeline::to_collapsed`] on live records and by
/// `RunReport::to_collapsed` on spans parsed back from JSON. Open spans
/// (no duration) are skipped; identical stacks merge; output lines are
/// sorted for determinism.
pub(crate) fn collapse_spans(spans: &[(String, Option<usize>, Option<u64>)]) -> String {
    // Self time = own duration minus the durations of direct children.
    let mut self_us: Vec<i64> =
        spans.iter().map(|(_, _, d)| d.unwrap_or(0) as i64).collect();
    for s in spans {
        if let (Some(p), Some(d)) = (s.1, s.2) {
            if p < self_us.len() {
                self_us[p] -= d as i64;
            }
        }
    }
    let stack_of = |mut i: usize| -> String {
        let mut parts = vec![spans[i].0.as_str()];
        while let Some(p) = spans[i].1 {
            if p >= spans.len() {
                break;
            }
            parts.push(spans[p].0.as_str());
            i = p;
        }
        parts.reverse();
        parts.join(";")
    };
    let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (i, (_, _, dur)) in spans.iter().enumerate() {
        if dur.is_none() {
            continue; // still open: no reliable time
        }
        *merged.entry(stack_of(i)).or_insert(0) += self_us[i].max(0) as u64;
    }
    let mut out = String::new();
    for (stack, us) in merged {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

/// RAII guard closing a span on drop.
pub struct SpanGuard<'a> {
    timeline: &'a Timeline,
    index: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.timeline.epoch.elapsed();
        let tid = std::thread::current().id();
        let mut inner = self.timeline.inner.lock().unwrap();
        let start = inner.spans[self.index].start;
        inner.spans[self.index].dur = Some(elapsed.saturating_sub(start));
        if let Some(stack) = inner.open.get_mut(&tid) {
            if let Some(pos) = stack.iter().rposition(|&i| i == self.index) {
                stack.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_parents() {
        let tl = Timeline::new();
        {
            let _a = tl.enter("outer");
            {
                let _b = tl.enter("inner");
            }
            let _c = tl.enter("sibling");
        }
        let spans = tl.records();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        assert!(spans.iter().all(|s| s.dur.is_some()));
    }

    #[test]
    fn timing_monotonicity() {
        let tl = Timeline::new();
        {
            let _a = tl.enter("outer");
            std::thread::sleep(Duration::from_millis(2));
            let _b = tl.enter("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        let spans = tl.records();
        let outer = &spans[0];
        let inner = &spans[1];
        // Children start after their parent and fit inside it.
        assert!(inner.start >= outer.start);
        assert!(inner.dur.unwrap() <= outer.dur.unwrap());
        // Both saw the sleeps.
        assert!(outer.dur.unwrap() >= Duration::from_millis(4));
        assert!(inner.dur.unwrap() >= Duration::from_millis(2));
    }

    #[test]
    fn cross_thread_spans_do_not_nest_into_other_threads() {
        let tl = Timeline::new();
        let _main = tl.enter("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = tl.enter("worker");
            });
        });
        let spans = tl.records();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, None, "worker span must not nest under main-thread span");
        assert_ne!(worker.thread, spans[0].thread);
    }

    #[test]
    fn time_helper_and_totals() {
        let tl = Timeline::new();
        let v = tl.time("work", || 42);
        assert_eq!(v, 42);
        tl.time("work", || ());
        assert_eq!(tl.records().len(), 2);
        assert!(tl.total_of("work") >= Duration::ZERO);
        assert_eq!(tl.total_of("absent"), Duration::ZERO);
    }

    #[test]
    fn collapsed_stacks_merge_and_subtract_children() {
        // Hand-built span list: root (1000us) with two children (300+200),
        // plus a second occurrence of the same leaf stack (100).
        let spans = vec![
            ("root".to_string(), None, Some(1000u64)),
            ("child".to_string(), Some(0), Some(300)),
            ("leaf".to_string(), Some(1), Some(50)),
            ("child".to_string(), Some(0), Some(200)),
            ("open".to_string(), Some(0), None),
        ];
        let out = collapse_spans(&spans);
        // root self = 1000 - 300 - 200 = 500; the two child stacks merge
        // (300-50 + 200 = 450); open spans are skipped.
        assert!(out.contains("root 500\n"), "{out}");
        assert!(out.contains("root;child 450\n"), "{out}");
        assert!(out.contains("root;child;leaf 50\n"), "{out}");
        assert!(!out.contains("open"), "{out}");
    }

    #[test]
    fn timeline_collapsed_export() {
        let tl = Timeline::new();
        {
            let _a = tl.enter("compile");
            let _b = tl.enter("emit");
        }
        let out = tl.to_collapsed();
        assert!(out.contains("compile;emit "), "{out}");
        for line in out.lines() {
            let (stack, n) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            n.parse::<u64>().expect("numeric self time");
        }
    }

    #[test]
    fn tree_rendering() {
        let tl = Timeline::new();
        {
            let _a = tl.enter("compile");
            let _b = tl.enter("emit");
        }
        let tree = tl.tree_string();
        assert!(tree.contains("compile"));
        assert!(tree.contains("  emit"), "{tree}");
    }
}
