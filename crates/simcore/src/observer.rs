//! Retirement-stream observers.

use crate::retire::RetiredInst;

/// An analysis pass that consumes the retirement stream.
///
/// The emulation core calls [`Observer::on_retire`] once per retired
/// instruction, in program order. Observers are deliberately streaming: the
/// paper's traces run to billions of instructions, so analyses must not
/// buffer the whole trace (the windowed critical path keeps only a bounded
/// ring of the most recent records).
pub trait Observer {
    /// Called after each instruction retires.
    fn on_retire(&mut self, ri: &RetiredInst);

    /// Called once when the program exits; default does nothing.
    fn on_finish(&mut self) {}
}

/// A no-op observer, useful for raw speed measurements.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_retire(&mut self, _ri: &RetiredInst) {}
}

/// An observer that simply counts retirements; the cheapest possible
/// path-length measurement when no per-kernel breakdown is needed.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingObserver {
    /// Number of instructions retired so far.
    pub retired: u64,
}

impl Observer for CountingObserver {
    #[inline]
    fn on_retire(&mut self, _ri: &RetiredInst) {
        self.retired += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retire::{InstGroup, RetiredInst};

    #[test]
    fn counting_observer_counts() {
        let mut c = CountingObserver::default();
        let ri = RetiredInst::new(0, InstGroup::IntAlu);
        for _ in 0..5 {
            c.on_retire(&ri);
        }
        assert_eq!(c.retired, 5);
    }
}
