//! Unified register-identifier space.
//!
//! Dependency analyses (critical path, windowed critical path) need a single
//! flat namespace covering both ISAs' architectural state: 32 integer
//! registers, 32 floating-point registers, and the AArch64 NZCV condition
//! flags (modelled as one extra slot, exactly as SimEng models condition
//! state as a register file entry). RISC-V has no flags register and simply
//! never references the slot.

/// Total number of slots in the unified register space.
///
/// Slots `0..32` are integer registers, `32..64` floating-point registers,
/// slot `64` is the condition-flags pseudo-register.
pub const NUM_REG_SLOTS: usize = 65;

/// A single architectural register in the unified namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegId {
    /// Integer register `Xn` / `xn` (0..=31).
    Int(u8),
    /// Floating-point register `Dn` / `fn` (0..=31).
    Fp(u8),
    /// The NZCV condition flags (AArch64 only).
    Flags,
}

impl RegId {
    /// Flat index into `[_; NUM_REG_SLOTS]` tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegId::Int(n) => {
                debug_assert!(n < 32);
                n as usize
            }
            RegId::Fp(n) => {
                debug_assert!(n < 32);
                32 + n as usize
            }
            RegId::Flags => 64,
        }
    }

    /// Inverse of [`RegId::index`].
    #[inline]
    pub fn from_index(i: usize) -> RegId {
        match i {
            0..=31 => RegId::Int(i as u8),
            32..=63 => RegId::Fp((i - 32) as u8),
            64 => RegId::Flags,
            _ => panic!("register slot index {i} out of range"),
        }
    }
}

impl std::fmt::Display for RegId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegId::Int(n) => write!(f, "x{n}"),
            RegId::Fp(n) => write!(f, "f{n}"),
            RegId::Flags => write!(f, "nzcv"),
        }
    }
}

/// A set of registers, stored as a 128-bit bitmask over [`RegId::index`].
///
/// Building the source/destination sets of a retired instruction must not
/// allocate (the emulator retires tens of millions of instructions per
/// analysis run), so this is a plain `u128`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegSet(u128);

impl RegSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        RegSet(0)
    }

    /// Insert a register into the set.
    #[inline]
    pub fn insert(&mut self, r: RegId) {
        self.0 |= 1u128 << r.index();
    }

    /// Set containing exactly the given registers.
    pub fn of(regs: &[RegId]) -> Self {
        let mut s = RegSet::empty();
        for &r in regs {
            s.insert(r);
        }
        s
    }

    /// Whether the set contains `r`.
    #[inline]
    pub fn contains(&self, r: RegId) -> bool {
        self.0 & (1u128 << r.index()) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    #[inline]
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Iterate over the members in ascending slot order.
    #[inline]
    pub fn iter(&self) -> RegSetIter {
        RegSetIter(self.0)
    }

    /// Set union.
    #[inline]
    pub fn union(&self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }
}

impl FromIterator<RegId> for RegSet {
    fn from_iter<T: IntoIterator<Item = RegId>>(iter: T) -> Self {
        let mut s = RegSet::empty();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

/// Iterator over the members of a [`RegSet`].
pub struct RegSetIter(u128);

impl Iterator for RegSetIter {
    type Item = RegId;

    #[inline]
    fn next(&mut self) -> Option<RegId> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(RegId::from_index(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..NUM_REG_SLOTS {
            assert_eq!(RegId::from_index(i).index(), i);
        }
    }

    #[test]
    fn regset_basicops() {
        let mut s = RegSet::empty();
        assert!(s.is_empty());
        s.insert(RegId::Int(3));
        s.insert(RegId::Fp(0));
        s.insert(RegId::Flags);
        assert_eq!(s.len(), 3);
        assert!(s.contains(RegId::Int(3)));
        assert!(!s.contains(RegId::Int(4)));
        let members: Vec<RegId> = s.iter().collect();
        assert_eq!(members, vec![RegId::Int(3), RegId::Fp(0), RegId::Flags]);
    }

    #[test]
    fn regset_union() {
        let a = RegSet::of(&[RegId::Int(1)]);
        let b = RegSet::of(&[RegId::Int(2), RegId::Flags]);
        let u = a.union(b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RegId::Int(5).to_string(), "x5");
        assert_eq!(RegId::Fp(31).to_string(), "f31");
        assert_eq!(RegId::Flags.to_string(), "nzcv");
    }
}
