//! Streaming trace capture.

use std::io::{self, Write};
use std::path::Path;

use simcore::{Observer, RetiredInst};

use crate::format::{
    fnv1a64, put_varint, zigzag, TraceMeta, TraceTrailer, BLOCK_RECORDS, BLOCK_TAG, MAGIC,
    TRAILER_TAG, VERSION,
};

/// Headline numbers from a finished capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Records written.
    pub records: u64,
    /// Blocks written.
    pub blocks: u64,
    /// Total bytes written, header and trailer included.
    pub bytes: u64,
}

/// An [`Observer`] that encodes every retired instruction into the compact
/// block format as it streams past, holding at most one block
/// ([`BLOCK_RECORDS`] records) of encoded bytes in memory.
///
/// `Observer::on_retire` cannot return errors, so I/O failures are latched
/// internally: the writer goes quiet after the first error and
/// [`TraceWriter::finish`] reports it. A capture is only trustworthy if
/// `finish` returns `Ok`.
pub struct TraceWriter<W: Write> {
    out: W,
    payload: Vec<u8>,
    n_in_block: u32,
    first_pc: u64,
    prev_pc: u64,
    prev_addr: u64,
    records: u64,
    blocks: u64,
    bytes: u64,
    error: Option<io::Error>,
}

impl TraceWriter<io::BufWriter<std::fs::File>> {
    /// Open `path` for writing and emit the header.
    pub fn create(path: &Path, meta: &TraceMeta) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        TraceWriter::new(io::BufWriter::new(file), meta)
    }

    /// Reopen a partial capture to continue it (checkpoint-restore path).
    ///
    /// The file is truncated to `bytes` — the flushed-block boundary a
    /// checkpoint's trace mark recorded — and the writer resumes with its
    /// `records`/`blocks`/`bytes` counters restored, an empty open block,
    /// and fresh per-block delta bases (which is exactly the state an
    /// uninterrupted writer has at a block boundary). The continuation is
    /// therefore byte-identical to a capture that never stopped.
    pub fn resume(path: &Path, records: u64, blocks: u64, bytes: u64) -> io::Result<Self> {
        use std::io::Seek;
        let file = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
        let on_disk = file.metadata()?.len();
        if on_disk < bytes {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("trace file is {on_disk} bytes, checkpoint expects at least {bytes}"),
            ));
        }
        file.set_len(bytes)?;
        let mut out = io::BufWriter::new(file);
        out.seek(io::SeekFrom::End(0))?;
        Ok(TraceWriter {
            out,
            payload: Vec::with_capacity(BLOCK_RECORDS * 8),
            n_in_block: 0,
            first_pc: 0,
            prev_pc: 0,
            prev_addr: 0,
            records,
            blocks,
            bytes,
            error: None,
        })
    }

    /// Flush buffered bytes and `fdatasync` the file, so everything
    /// flushed so far (the blocks a checkpoint's trace mark points at)
    /// survives a SIGKILL. Called when a checkpoint is written.
    pub fn sync_all(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            self.error = Some(io::Error::new(e.kind(), e.to_string()));
            return Err(e);
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }
}

impl TraceWriter<io::Sink> {
    /// A writer that encodes but discards everything — used to measure the
    /// observer-side cost of tracing without touching the filesystem.
    pub fn sink(meta: &TraceMeta) -> Self {
        TraceWriter::new(io::sink(), meta).expect("sink writes cannot fail")
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `out` and write the header.
    pub fn new(mut out: W, meta: &TraceMeta) -> io::Result<Self> {
        let meta_bytes = meta.to_json().pretty().into_bytes();
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?;
        out.write_all(&(meta_bytes.len() as u32).to_le_bytes())?;
        out.write_all(&meta_bytes)?;
        Ok(TraceWriter {
            out,
            payload: Vec::with_capacity(BLOCK_RECORDS * 8),
            n_in_block: 0,
            first_pc: 0,
            prev_pc: 0,
            prev_addr: 0,
            records: 0,
            blocks: 0,
            bytes: (4 + 2 + 2 + 4 + meta_bytes.len()) as u64,
            error: None,
        })
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Blocks written so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Bytes written so far (flushed blocks only).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// The first latched I/O error, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn encode(&mut self, ri: &RetiredInst) {
        if self.n_in_block == 0 {
            self.first_pc = ri.pc;
            self.prev_pc = ri.pc;
            self.prev_addr = 0;
        }
        let n_reads = ri.mem_reads.len() as u8;
        let n_writes = ri.mem_writes.len() as u8;
        let flags = (ri.is_branch as u8)
            | ((ri.taken as u8) << 1)
            | (n_reads << 2)
            | (n_writes << 4);
        self.payload.push(flags);
        self.payload.push(ri.group.code());
        put_varint(&mut self.payload, zigzag(ri.pc.wrapping_sub(self.prev_pc) as i64));
        self.prev_pc = ri.pc;
        for set in [&ri.srcs, &ri.dsts] {
            self.payload.push(set.len() as u8);
            for r in set.iter() {
                self.payload.push(r.index() as u8);
            }
        }
        for a in ri.mem_reads.iter().chain(ri.mem_writes.iter()) {
            put_varint(&mut self.payload, zigzag(a.addr.wrapping_sub(self.prev_addr) as i64));
            self.payload.push(a.size);
            self.prev_addr = a.addr;
        }
        self.n_in_block += 1;
        self.records += 1;
        if self.n_in_block as usize >= BLOCK_RECORDS {
            self.flush_block();
        }
    }

    fn flush_block(&mut self) {
        if self.n_in_block == 0 || self.error.is_some() {
            self.payload.clear();
            self.n_in_block = 0;
            return;
        }
        let checksum = fnv1a64(&self.payload);
        let write = (|| -> io::Result<()> {
            self.out.write_all(&[BLOCK_TAG])?;
            self.out.write_all(&self.n_in_block.to_le_bytes())?;
            self.out.write_all(&(self.payload.len() as u32).to_le_bytes())?;
            self.out.write_all(&self.first_pc.to_le_bytes())?;
            self.out.write_all(&checksum.to_le_bytes())?;
            self.out.write_all(&self.payload)
        })();
        match write {
            Ok(()) => {
                self.bytes += (1 + 4 + 4 + 8 + 8 + self.payload.len()) as u64;
                self.blocks += 1;
            }
            Err(e) => self.error = Some(e),
        }
        self.payload.clear();
        self.n_in_block = 0;
    }

    /// Flush the open block, write the trailer, and flush the sink.
    ///
    /// `state_hash` is the final [`simcore::CpuState::state_hash`] of the
    /// captured run (0 if unavailable); `capture_wall` is the wall time the
    /// capture run spent emulating, recorded so replays can report their
    /// speedup. Reports telemetry counters `trace_bytes_written`,
    /// `trace_blocks_written`, `trace_records_written` on success.
    pub fn finish(
        mut self,
        state_hash: u64,
        capture_wall: std::time::Duration,
    ) -> io::Result<WriteSummary> {
        self.flush_block();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let trailer = TraceTrailer {
            total_records: self.records,
            state_hash,
            capture_wall_us: capture_wall.as_micros() as u64,
        };
        self.out.write_all(&[TRAILER_TAG])?;
        self.out.write_all(&trailer.checked_bytes())?;
        self.out.write_all(&trailer.checksum().to_le_bytes())?;
        self.out.flush()?;
        self.bytes += 1 + 24 + 8;
        let tel = telemetry::global();
        tel.counter_add("trace_bytes_written", self.bytes);
        tel.counter_add("trace_blocks_written", self.blocks);
        tel.counter_add("trace_records_written", self.records);
        Ok(WriteSummary { records: self.records, blocks: self.blocks, bytes: self.bytes })
    }
}

impl<W: Write> Observer for TraceWriter<W> {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        if self.error.is_none() {
            self.encode(ri);
        }
    }

    fn on_finish(&mut self) {
        self.flush_block();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "synthetic".into(),
            compiler: "none".into(),
            isa: "RISC-V".into(),
            size: "test".into(),
            regions: vec![],
        }
    }

    #[test]
    fn writer_goes_quiet_after_io_error() {
        /// Fails every write after the header.
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::new(io::ErrorKind::Other, "disk full"));
                }
                self.0 = self.0.saturating_sub(buf.len());
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = TraceWriter::new(FailAfter(1 << 20), &meta()).unwrap();
        // Force many block flushes against a sink that fails immediately
        // after the header budget is spent.
        w.error = Some(io::Error::new(io::ErrorKind::Other, "disk full"));
        let ri = RetiredInst::new(0x1000, simcore::InstGroup::IntAlu);
        for _ in 0..10 {
            w.on_retire(&ri);
        }
        assert_eq!(w.records(), 0, "no records accepted after an error");
        assert!(w.finish(0, std::time::Duration::ZERO).is_err());
    }

    #[test]
    fn resumed_capture_is_byte_identical_to_uninterrupted() {
        let dir = std::env::temp_dir().join(format!("isacmp-trace-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let straight = dir.join("straight.trace");
        let resumed = dir.join("resumed.trace");
        let ri = |i: u64| RetiredInst::new(0x1000 + i * 4, simcore::InstGroup::IntAlu);
        let total = BLOCK_RECORDS as u64 * 3 + 17;
        let cut = BLOCK_RECORDS as u64 * 2; // a flushed-block boundary

        let mut w = TraceWriter::create(&straight, &meta()).unwrap();
        for i in 0..total {
            w.on_retire(&ri(i));
        }
        let want = w.finish(42, std::time::Duration::ZERO).unwrap();

        let mut w = TraceWriter::create(&resumed, &meta()).unwrap();
        for i in 0..cut {
            w.on_retire(&ri(i));
        }
        w.sync_all().unwrap();
        let (records, blocks, bytes) = (w.records(), w.blocks(), w.bytes_written());
        assert_eq!(records, cut, "cut lands on a block boundary: nothing pending");
        drop(w); // simulate the process dying after the checkpoint
        let mut w = TraceWriter::resume(&resumed, records, blocks, bytes).unwrap();
        for i in cut..total {
            w.on_retire(&ri(i));
        }
        let got = w.finish(42, std::time::Duration::ZERO).unwrap();

        assert_eq!(got, want, "summaries must agree");
        let a = std::fs::read(&straight).unwrap();
        let b = std::fs::read(&resumed).unwrap();
        assert_eq!(a, b, "resumed capture must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_file_shorter_than_the_mark() {
        let dir = std::env::temp_dir().join(format!("isacmp-trace-short-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.trace");
        let w = TraceWriter::create(&path, &meta()).unwrap();
        let bytes = w.bytes_written();
        drop(w);
        assert!(TraceWriter::resume(&path, 0, 0, bytes + 1000).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_writer_counts() {
        let mut w = TraceWriter::sink(&meta());
        let ri = RetiredInst::new(0x1000, simcore::InstGroup::IntAlu);
        for _ in 0..5000 {
            w.on_retire(&ri);
        }
        assert_eq!(w.records(), 5000);
        let s = w.finish(7, std::time::Duration::from_micros(10)).unwrap();
        assert_eq!(s.records, 5000);
        assert_eq!(s.blocks, 2, "5000 records span two {BLOCK_RECORDS}-record blocks");
        assert!(s.bytes > 0);
    }
}
