//! Reference interpreter for the kernel IR.
//!
//! Executes a [`KernelProgram`] directly on the host with the same `f64`
//! semantics the back-ends emit (including FMA contraction when the
//! personality fuses), so compiled guest checksums must match bit-for-bit.

use std::collections::HashMap;

use crate::ir::*;
use crate::personality::Personality;

/// Result of interpreting a program.
pub struct InterpResult {
    /// Final contents of every array, by name.
    pub arrays: HashMap<String, Vec<f64>>,
    /// Checksum (sum over `checksum_arrays`, in declaration order).
    pub checksum: f64,
}

/// IEEE minimumNumber matching both back-ends' `fmin`/`fminnm` lowering
/// for NaN-free inputs, including the architectural -0 < +0 ordering that
/// RISC-V `fmin` and AArch64 `fminnm` share.
fn fmin(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

fn fmax(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

struct Ctx {
    arrays: Vec<Vec<f64>>,
    fuse_fma: bool,
}

impl Ctx {
    fn eval(&self, e: &Expr, ivs: &[u64], temps: &[f64], accs: &[f64]) -> f64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Temp(t) => temps[t.0],
            Expr::Acc(a) => accs[a.0],
            Expr::Load(acc) => self.arrays[acc.arr.0][element(acc, ivs)],
            Expr::Un(op, a) => {
                let a = self.eval(a, ivs, temps, accs);
                match op {
                    UnOp::Neg => -a,
                    UnOp::Abs => a.abs(),
                    UnOp::Sqrt => a.sqrt(),
                }
            }
            Expr::Bin(op, a, b) => {
                let a = self.eval(a, ivs, temps, accs);
                let b = self.eval(b, ivs, temps, accs);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Min => fmin(a, b),
                    BinOp::Max => fmax(a, b),
                }
            }
            Expr::MulAdd(a, b, c) => {
                let a = self.eval(a, ivs, temps, accs);
                let b = self.eval(b, ivs, temps, accs);
                let c = self.eval(c, ivs, temps, accs);
                if self.fuse_fma {
                    a.mul_add(b, c)
                } else {
                    a * b + c
                }
            }
            Expr::Select { cmp, a, b, t, e } => {
                let av = self.eval(a, ivs, temps, accs);
                let bv = self.eval(b, ivs, temps, accs);
                let cond = match cmp {
                    CmpOp::Lt => av < bv,
                    CmpOp::Le => av <= bv,
                    CmpOp::Eq => av == bv,
                };
                if cond {
                    self.eval(t, ivs, temps, accs)
                } else {
                    self.eval(e, ivs, temps, accs)
                }
            }
        }
    }
}

fn element(acc: &Access, ivs: &[u64]) -> usize {
    let mut idx = acc.offset;
    for (d, &s) in acc.strides.iter().enumerate() {
        idx += s * ivs[d] as i64;
    }
    idx as usize
}

/// Interpret `prog` under `personality`'s arithmetic model.
pub fn interpret(prog: &KernelProgram, personality: &Personality) -> InterpResult {
    prog.validate();
    let mut ctx = Ctx {
        arrays: prog.arrays.iter().map(init_values).collect(),
        fuse_fma: personality.fuse_fma,
    };

    for _rep in 0..prog.repeat {
        for k in &prog.kernels {
            let ndim = k.dims.len();
            let mut accs: Vec<f64> = k.accs.iter().map(|a| a.init).collect();
            let max_temp = k
                .body
                .iter()
                .filter_map(|s| match s {
                    Stmt::Def { temp, .. } => Some(temp.0 + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let mut temps = vec![0.0f64; max_temp];
            let mut ivs = vec![0u64; ndim];
            'nest: loop {
                for s in &k.body {
                    match s {
                        Stmt::Def { temp, expr } => {
                            temps[temp.0] = ctx.eval(expr, &ivs, &temps, &accs);
                        }
                        Stmt::Store { access, value } => {
                            let v = ctx.eval(value, &ivs, &temps, &accs);
                            let idx = element(access, &ivs);
                            ctx.arrays[access.arr.0][idx] = v;
                        }
                        Stmt::Accum { acc, op, value } => {
                            let v = ctx.eval(value, &ivs, &temps, &accs);
                            accs[acc.0] = match op {
                                BinOp::Add => accs[acc.0] + v,
                                BinOp::Min => fmin(accs[acc.0], v),
                                BinOp::Max => fmax(accs[acc.0], v),
                                _ => unreachable!(),
                            };
                        }
                    }
                }
                // Advance the odometer (innermost fastest).
                let mut d = ndim;
                loop {
                    if d == 0 {
                        break 'nest;
                    }
                    d -= 1;
                    ivs[d] += 1;
                    if ivs[d] < k.dims[d] {
                        break;
                    }
                    ivs[d] = 0;
                }
            }
            for (i, decl) in k.accs.iter().enumerate() {
                if let Some((arr, elem)) = decl.store_to {
                    ctx.arrays[arr.0][elem as usize] = accs[i];
                }
            }
        }
    }

    // Per-array partial sums folded in declaration order — exactly the
    // shape of the generated guest checksum code, so results match bit-for-
    // bit despite FP non-associativity.
    let mut checksum = 0.0f64;
    for a in &prog.checksum_arrays {
        let mut partial = 0.0f64;
        for v in &ctx.arrays[a.0] {
            partial += v;
        }
        checksum += partial;
    }
    let arrays = prog
        .arrays
        .iter()
        .zip(ctx.arrays.iter())
        .map(|(d, v)| (d.name.clone(), v.clone()))
        .collect();
    InterpResult { arrays, checksum }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_1d() {
        let mut p = KernelProgram::new("triad");
        let a = p.array("a", 8, ArrayInit::Zero);
        let b = p.array("b", 8, ArrayInit::Linear { start: 0.0, step: 1.0 });
        let c = p.array("c", 8, ArrayInit::Fill(2.0));
        let unit = |arr| Access { arr, strides: vec![1], offset: 0 };
        p.kernel(Kernel {
            name: "triad".into(),
            dims: vec![8],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(a),
                value: Expr::mul_add(Expr::Const(3.0), Expr::Load(unit(c)), Expr::Load(unit(b))),
            }],
        });
        p.checksum_arrays.push(a);
        let r = interpret(&p, &Personality::gcc122());
        // a[i] = 3*2 + i -> sum = 8*6 + 28 = 76
        assert_eq!(r.checksum, 76.0);
        assert_eq!(r.arrays["a"][3], 9.0);
    }

    #[test]
    fn two_dim_accumulation() {
        let mut p = KernelProgram::new("sum2d");
        let m = p.array("m", 12, ArrayInit::Linear { start: 1.0, step: 1.0 });
        let out = p.array("out", 1, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "sum".into(),
            dims: vec![3, 4], // 3 rows of 4
            accs: vec![AccDecl { init: 0.0, store_to: Some((out, 0)) }],
            body: vec![Stmt::Accum {
                acc: AccId(0),
                op: BinOp::Add,
                value: Expr::Load(Access { arr: m, strides: vec![4, 1], offset: 0 }),
            }],
        });
        p.checksum_arrays.push(out);
        let r = interpret(&p, &Personality::gcc122());
        assert_eq!(r.checksum, (1..=12).sum::<i32>() as f64);
    }

    #[test]
    fn select_and_minmax() {
        let mut p = KernelProgram::new("sel");
        let a = p.array("a", 4, ArrayInit::Values(vec![1.0, -5.0, 3.0, -2.0]));
        let b = p.array("b", 4, ArrayInit::Zero);
        let unit = |arr| Access { arr, strides: vec![1], offset: 0 };
        p.kernel(Kernel {
            name: "clamp".into(),
            dims: vec![4],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(b),
                value: Expr::Select {
                    cmp: CmpOp::Lt,
                    a: Box::new(Expr::Load(unit(a))),
                    b: Box::new(Expr::Const(0.0)),
                    t: Box::new(Expr::Const(0.0)),
                    e: Box::new(Expr::Load(unit(a))),
                },
            }],
        });
        p.checksum_arrays.push(b);
        let r = interpret(&p, &Personality::gcc122());
        assert_eq!(r.arrays["b"], vec![1.0, 0.0, 3.0, 0.0]);
        assert_eq!(r.checksum, 4.0);
    }

    #[test]
    fn repeat_runs_kernels_multiple_times() {
        let mut p = KernelProgram::new("rep");
        let a = p.array("a", 1, ArrayInit::Zero);
        let unit = |arr| Access { arr, strides: vec![1], offset: 0 };
        p.kernel(Kernel {
            name: "inc".into(),
            dims: vec![1],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(a),
                value: Expr::add(Expr::Load(unit(a)), Expr::Const(1.0)),
            }],
        });
        p.repeat = 5;
        p.checksum_arrays.push(a);
        let r = interpret(&p, &Personality::gcc92());
        assert_eq!(r.checksum, 5.0);
    }

    #[test]
    fn fma_fusion_affects_bits() {
        // Pick operands where fused and unfused differ: with a = 1 + 2^-30,
        // a*a = 1 + 2^-29 + 2^-60. The 2^-60 term is below ulp(1) so the
        // separate multiply rounds it away; the fused form keeps it.
        let a = 1.0 + (2.0f64).powi(-30);
        let mut p = KernelProgram::new("fma");
        let out = p.array("out", 1, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "k".into(),
            dims: vec![1],
            accs: vec![],
            body: vec![Stmt::Store {
                access: Access { arr: out, strides: vec![0], offset: 0 },
                value: Expr::mul_add(Expr::Const(a), Expr::Const(a), Expr::Const(-1.0)),
            }],
        });
        p.checksum_arrays.push(out);
        let fused = interpret(&p, &Personality::gcc122()).checksum;
        let mut unfused_p = Personality::gcc122();
        unfused_p.fuse_fma = false;
        let unfused = interpret(&p, &unfused_p).checksum;
        assert_eq!(fused, a.mul_add(a, -1.0));
        assert_eq!(unfused, a * a - 1.0);
        assert_ne!(fused.to_bits(), unfused.to_bits());
    }
}
