//! Result containers and paper-style table/figure formatting.
//!
//! One [`ExperimentCell`] holds everything measured for a (workload,
//! compiler, ISA) combination; a [`ResultMatrix`] formats the full set the
//! way the paper reports it (Tables 1-2, Figures 1-2).

use telemetry::Json;

/// All measurements for one (workload, compiler, ISA) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCell {
    /// Workload name ("STREAM", ...).
    pub workload: String,
    /// Compiler label ("gcc-9.2" / "gcc-12.2").
    pub compiler: String,
    /// ISA label ("AArch64" / "RISC-V").
    pub isa: String,
    /// Dynamic instruction count.
    pub path_length: u64,
    /// Unit-cost critical path.
    pub critical_path: u64,
    /// Latency-scaled critical path (TX2 latencies).
    pub scaled_cp: u64,
    /// Per-kernel instruction counts, in kernel order.
    pub kernels: Vec<(String, u64)>,
    /// Windowed-CP stats: (window size, mean CP, mean ILP).
    pub windows: Vec<(usize, f64, f64)>,
    /// Macro-op fusion measurements, present only when the cell ran with
    /// the fusion axis armed. `None` serializes to nothing, so unfused
    /// matrices are byte-identical to those written before fusion existed.
    pub fused: Option<FusedCell>,
}

/// Macro-op fusion measurements for one cell (the `crates/fusion` pass's
/// report, flattened to plain data so `analysis` stays decoupled from the
/// fusion crate).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedCell {
    /// Adjacent pairs fused; each removes one instruction from the path.
    pub fused_pairs: u64,
    /// Effective (fused) dynamic path length.
    pub effective_path_length: u64,
    /// Unit-cost critical path of the fused stream.
    pub fused_critical_path: u64,
    /// TX2-scaled critical path of the fused stream.
    pub fused_scaled_cp: u64,
    /// Non-zero per-pair-kind counts, `(pair name, count)` in table order.
    pub pair_counts: Vec<(String, u64)>,
    /// Effective per-kernel instruction counts, in kernel order.
    pub effective_kernels: Vec<(String, u64)>,
}

impl FusedCell {
    /// ILP of the fused stream from its unit-cost critical path.
    pub fn ilp(&self) -> f64 {
        self.effective_path_length as f64 / self.fused_critical_path.max(1) as f64
    }
}

impl ExperimentCell {
    /// ILP from the unit-cost critical path.
    pub fn ilp(&self) -> f64 {
        self.path_length as f64 / self.critical_path.max(1) as f64
    }

    /// ILP from the scaled critical path.
    pub fn scaled_ilp(&self) -> f64 {
        self.path_length as f64 / self.scaled_cp.max(1) as f64
    }

    /// 2 GHz runtime estimate (ms) from the unit-cost CP.
    pub fn runtime_ms(&self) -> f64 {
        crate::runtime_ms(self.critical_path)
    }

    /// 2 GHz runtime estimate (ms) from the scaled CP.
    pub fn scaled_runtime_ms(&self) -> f64 {
        crate::runtime_ms(self.scaled_cp)
    }
}

/// Record of a cell that could not be measured: which combination failed,
/// how (`kind` is one of the typed `CellError` kinds — "compile", "load",
/// "sim", "panic", "checksum", "timeout"), and how hard the harness tried.
/// Kept as plain strings so the analysis crate stays decoupled from the
/// orchestration layer's error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Workload name ("STREAM", ...).
    pub workload: String,
    /// Compiler label ("gcc-9.2" / "gcc-12.2").
    pub compiler: String,
    /// ISA label ("AArch64" / "RISC-V").
    pub isa: String,
    /// Failure kind, rendered as `ERR(<kind>)` in the tables.
    pub kind: String,
    /// Human-readable detail (the underlying error's display).
    pub detail: String,
    /// Retries spent before giving up on the cell.
    pub retries: u64,
}

/// The full experiment matrix plus formatters for every paper artefact.
/// A matrix may be *partial*: combinations that failed are carried in
/// [`ResultMatrix::failures`] and render as `ERR(<kind>)` cells instead of
/// discarding the run.
#[derive(Debug, Clone, Default)]
pub struct ResultMatrix {
    /// All successfully measured cells.
    pub cells: Vec<ExperimentCell>,
    /// Combinations that failed (graceful-degradation record).
    pub failures: Vec<CellFailure>,
}

impl ResultMatrix {
    /// Look up a cell.
    pub fn get(&self, workload: &str, compiler: &str, isa: &str) -> Option<&ExperimentCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.compiler == compiler && c.isa == isa)
    }

    /// Look up a failure record.
    pub fn get_failure(&self, workload: &str, compiler: &str, isa: &str) -> Option<&CellFailure> {
        self.failures
            .iter()
            .find(|c| c.workload == workload && c.compiler == compiler && c.isa == isa)
    }

    /// True when every attempted cell was measured.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// One line per failure, for operator-facing summaries.
    pub fn failure_summary(&self) -> String {
        self.failures
            .iter()
            .map(|f| {
                format!(
                    "ERR({}) {} {} {}: {} ({} retries)\n",
                    f.kind, f.workload, f.compiler, f.isa, f.detail, f.retries
                )
            })
            .collect()
    }

    /// Distinct workloads in insertion order (failed-only workloads
    /// included, so partial tables still show every row).
    pub fn workloads(&self) -> Vec<String> {
        let mut out = Vec::new();
        for w in self.cells.iter().map(|c| &c.workload).chain(self.failures.iter().map(|f| &f.workload)) {
            if !out.contains(w) {
                out.push(w.clone());
            }
        }
        out
    }

    fn compilers(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in self.cells.iter().map(|c| &c.compiler).chain(self.failures.iter().map(|f| &f.compiler)) {
            if !out.contains(c) {
                out.push(c.clone());
            }
        }
        out
    }

    /// Render Table 1 (path length, CP, ILP, 2 GHz runtime).
    pub fn table1(&self) -> String {
        self.render_table(
            "Table 1: Critical Paths and ILP per Benchmark",
            &[
                ("Path Length", &|c: &ExperimentCell| fmt_u64(c.path_length)),
                ("CP", &|c| fmt_u64(c.critical_path)),
                ("ILP", &|c| format!("{:.0}", c.ilp())),
                ("2GHz Run time (ms)", &|c| fmt_ms(c.runtime_ms())),
            ],
        )
    }

    /// Render Table 2 (scaled CP, ILP, 2 GHz runtime).
    pub fn table2(&self) -> String {
        self.render_table(
            "Table 2: Scaled Critical Paths and ILP per Benchmark",
            &[
                ("Scaled CP", &|c: &ExperimentCell| fmt_u64(c.scaled_cp)),
                ("ILP", &|c| format!("{:.0}", c.scaled_ilp())),
                ("2GHz Run time (ms)", &|c| fmt_ms(c.scaled_runtime_ms())),
            ],
        )
    }

    /// True when at least one cell carries fusion measurements (i.e. the
    /// matrix was produced with the fusion axis armed).
    pub fn has_fused(&self) -> bool {
        self.cells.iter().any(|c| c.fused.is_some())
    }

    /// Render the fused-vs-unfused comparison (Table-1 layout): per
    /// workload, the unfused path length and critical path next to the
    /// macro-op-fused effective values, the reduction, and the fused pair
    /// count. Cells without fusion data render `-`.
    pub fn fusion_table(&self) -> String {
        let fused = |c: &ExperimentCell, f: &dyn Fn(&FusedCell) -> String| match &c.fused {
            Some(fc) => f(fc),
            None => "-".to_string(),
        };
        self.render_table(
            "Table F: Macro-op Fusion — effective path length and fused CP",
            &[
                ("Path Length", &|c: &ExperimentCell| fmt_u64(c.path_length)),
                ("Effective PL", &|c| fused(c, &|f| fmt_u64(f.effective_path_length))),
                ("Fused pairs", &|c| fused(c, &|f| fmt_u64(f.fused_pairs))),
                ("PL reduction", &|c| {
                    fused(c, &|f| {
                        let base = c.path_length.max(1) as f64;
                        format!("{:.1}%", 100.0 * (1.0 - f.effective_path_length as f64 / base))
                    })
                }),
                ("CP", &|c| fmt_u64(c.critical_path)),
                ("Fused CP", &|c| fused(c, &|f| fmt_u64(f.fused_critical_path))),
                ("Fused scaled CP", &|c| fused(c, &|f| fmt_u64(f.fused_scaled_cp))),
                ("Fused ILP", &|c| fused(c, &|f| format!("{:.0}", f.ilp()))),
            ],
        )
    }

    /// Fusion figure data, one row per fused pair kind per cell, as CSV
    /// (`workload,compiler,isa,pair,count,per_kilo_inst`). Cells without
    /// fusion data contribute nothing; failed cells contribute one
    /// `ERR(<kind>)` placeholder row so partial matrices stay visible.
    pub fn fusion_csv(&self) -> String {
        let mut out = String::from("workload,compiler,isa,pair,count,per_kilo_inst\n");
        for c in &self.cells {
            let Some(fc) = &c.fused else { continue };
            for (pair, count) in &fc.pair_counts {
                out.push_str(&format!(
                    "{},{},{},{},{},{:.3}\n",
                    c.workload,
                    c.compiler,
                    c.isa,
                    pair,
                    count,
                    1000.0 * *count as f64 / c.path_length.max(1) as f64
                ));
            }
        }
        for f in &self.failures {
            out.push_str(&format!(
                "{},{},{},ERR({}),0,0.000\n",
                f.workload, f.compiler, f.isa, f.kind
            ));
        }
        out
    }

    #[allow(clippy::type_complexity)]
    fn render_table(
        &self,
        title: &str,
        rows: &[(&str, &dyn Fn(&ExperimentCell) -> String)],
    ) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        for w in self.workloads() {
            out.push_str(&format!("\n== {w} ==\n"));
            let mut header = format!("{:<22}", "");
            let mut cols: Vec<Result<&ExperimentCell, &CellFailure>> = Vec::new();
            for compiler in self.compilers() {
                for isa in ["AArch64", "RISC-V"] {
                    let col = match self.get(&w, &compiler, isa) {
                        Some(c) => Some(Ok(c)),
                        None => self.get_failure(&w, &compiler, isa).map(Err),
                    };
                    if let Some(col) = col {
                        header.push_str(&format!("{:>24}", format!("{compiler}/{isa}")));
                        cols.push(col);
                    }
                }
            }
            out.push_str(&header);
            out.push('\n');
            for (label, f) in rows {
                out.push_str(&format!("{label:<22}"));
                for col in &cols {
                    let text = match col {
                        Ok(c) => f(c),
                        Err(fail) => format!("ERR({})", fail.kind),
                    };
                    out.push_str(&format!("{text:>24}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Figure 1 data: per-kernel path lengths, normalised to the GCC 9.2 /
    /// AArch64 total for the same workload, as CSV
    /// (`workload,compiler,isa,kernel,instructions,normalised`). Failed
    /// cells are not dropped: each contributes one placeholder row with
    /// `ERR(<kind>)` in the kernel column and zeroed measurements, so a
    /// figure built from a partial matrix shows *where* data is missing.
    pub fn fig1_csv(&self) -> String {
        // With the fusion axis armed, two extra columns carry the
        // macro-op-fused per-kernel counts; without it the CSV is
        // byte-identical to the pre-fusion shape.
        let fused = self.has_fused();
        let mut out = String::from("workload,compiler,isa,kernel,instructions,normalised");
        if fused {
            out.push_str(",effective,effective_normalised");
        }
        out.push('\n');
        for w in self.workloads() {
            let base = self
                .get(&w, "gcc-9.2", "AArch64")
                .map(|c| c.path_length)
                .unwrap_or(1)
                .max(1) as f64;
            for c in self.cells.iter().filter(|c| c.workload == w) {
                for (kernel, count) in &c.kernels {
                    out.push_str(&format!(
                        "{},{},{},{},{},{:.6}",
                        c.workload,
                        c.compiler,
                        c.isa,
                        kernel,
                        count,
                        *count as f64 / base
                    ));
                    if fused {
                        let eff = c
                            .fused
                            .as_ref()
                            .and_then(|f| {
                                f.effective_kernels
                                    .iter()
                                    .find(|(k, _)| k == kernel)
                                    .map(|(_, n)| *n)
                            })
                            .unwrap_or(*count);
                        out.push_str(&format!(",{},{:.6}", eff, eff as f64 / base));
                    }
                    out.push('\n');
                }
            }
            for f in self.failures.iter().filter(|f| f.workload == w) {
                out.push_str(&format!(
                    "{},{},{},ERR({}),0,0.000000{}\n",
                    f.workload,
                    f.compiler,
                    f.isa,
                    f.kind,
                    if fused { ",0,0.000000" } else { "" }
                ));
            }
        }
        out
    }

    /// Figure 2 data: mean ILP per window size, GCC 12.2 binaries, as CSV
    /// (`workload,isa,window,mean_cp,mean_ilp`). Failed GCC 12.2 cells
    /// emit one `ERR(<kind>)` placeholder row (zeroed measurements)
    /// instead of vanishing from the figure.
    pub fn fig2_csv(&self) -> String {
        let mut out = String::from("workload,isa,window,mean_cp,mean_ilp\n");
        for c in self.cells.iter().filter(|c| c.compiler == "gcc-12.2") {
            for (size, mean_cp, mean_ilp) in &c.windows {
                out.push_str(&format!(
                    "{},{},{},{:.3},{:.3}\n",
                    c.workload, c.isa, size, mean_cp, mean_ilp
                ));
            }
        }
        for f in self.failures.iter().filter(|f| f.compiler == "gcc-12.2") {
            out.push_str(&format!("{},{},ERR({}),0.000,0.000\n", f.workload, f.isa, f.kind));
        }
        out
    }

    /// The artifact's `basicCPResult.txt` / `scaledCPResult.txt`: critical
    /// path and ILP per benchmark, one line per cell.
    pub fn cp_result_txt(&self, scaled: bool) -> String {
        let mut out = String::new();
        for c in &self.cells {
            let (cp, ilp) = if scaled {
                (c.scaled_cp, c.scaled_ilp())
            } else {
                (c.critical_path, c.ilp())
            };
            out.push_str(&format!(
                "{} {} {}: pathLength={} CP={} ILP={:.1}\n",
                c.workload, c.compiler, c.isa, c.path_length, cp, ilp
            ));
        }
        out
    }

    /// The artifact's `windowAverages.txt`: one comma-separated list of
    /// mean window-CP lengths per benchmark (ascending window size),
    /// GCC 12.2 binaries.
    pub fn window_averages_txt(&self) -> String {
        let mut out = String::new();
        for c in self.cells.iter().filter(|c| c.compiler == "gcc-12.2") {
            let means: Vec<String> =
                c.windows.iter().map(|(_, cp, _)| format!("{cp:.3}")).collect();
            out.push_str(&format!("{} {}: {}\n", c.workload, c.isa, means.join(",")));
        }
        out
    }

    /// A gnuplot script rendering Figure 2 (mean ILP vs window size,
    /// log-log, one line per workload/ISA) with inline data blocks — the
    /// artifact's `lineGraph.pdf` equivalent: `gnuplot results/fig2.gnuplot`.
    pub fn fig2_gnuplot(&self) -> String {
        let mut out = String::from(concat!(
            "set terminal pdfcairo size 9,5\n",
            "set output 'fig2.pdf'\n",
            "set logscale x 2\n",
            "set logscale y\n",
            "set xlabel 'window size'\n",
            "set ylabel 'mean ILP'\n",
            "set title 'Mean ILP per window (GCC 12.2)'\n",
            "set key outside\n",
        ));
        let cells: Vec<&ExperimentCell> =
            self.cells.iter().filter(|c| c.compiler == "gcc-12.2").collect();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("$data{i} << EOD\n"));
            for (size, _, ilp) in &c.windows {
                out.push_str(&format!("{size} {ilp:.4}\n"));
            }
            out.push_str("EOD\n");
        }
        out.push_str("plot ");
        let plots: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let dash = if c.isa == "RISC-V" { 2 } else { 1 };
                format!(
                    "$data{i} using 1:2 with linespoints dashtype {dash} title '{} {}'",
                    c.workload, c.isa
                )
            })
            .collect();
        out.push_str(&plots.join(", \\\n     "));
        out.push('\n');
        out
    }

    /// Serialise the whole matrix as JSON (the artifact's `results/` role).
    /// Tuples become arrays (`kernels: [["copy", 648], ...]`), matching the
    /// shape of the checked-in `results/matrix.json`. Failed cells are
    /// serialized under `"failures"` so a partial run is a first-class
    /// artifact.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            (
                "cells",
                Json::Arr(self.cells.iter().map(ExperimentCell::to_json_value).collect()),
            ),
            (
                "failures",
                Json::Arr(self.failures.iter().map(CellFailure::to_json_value).collect()),
            ),
        ])
        .pretty()
    }

    /// Parse a matrix back from JSON. `"failures"` is optional, so
    /// matrices written before the fault-tolerance layer still load.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let j = Json::parse(s)?;
        let cells = j
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("matrix: missing \"cells\" array")?;
        let failures = match j.get("failures").and_then(Json::as_arr) {
            Some(arr) => arr.iter().map(CellFailure::from_json_value).collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        Ok(ResultMatrix {
            cells: cells.iter().map(ExperimentCell::from_json_value).collect::<Result<_, _>>()?,
            failures,
        })
    }
}

impl CellFailure {
    /// Serialize one failure record (the shape embedded in
    /// [`ResultMatrix::to_json`] and in journal records).
    pub fn to_json_value(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("compiler", Json::Str(self.compiler.clone())),
            ("isa", Json::Str(self.isa.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("detail", Json::Str(self.detail.clone())),
            ("retries", Json::Num(self.retries as f64)),
        ])
    }

    /// Parse one failure record back from its JSON shape.
    pub fn from_json_value(j: &Json) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("failure: missing string field {key:?}"))
        };
        Ok(CellFailure {
            workload: text("workload")?,
            compiler: text("compiler")?,
            isa: text("isa")?,
            kind: text("kind")?,
            detail: text("detail")?,
            retries: j.get("retries").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

impl ExperimentCell {
    /// Serialize one measured cell (the shape embedded in
    /// [`ResultMatrix::to_json`] and in journal records).
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("workload", Json::Str(self.workload.clone())),
            ("compiler", Json::Str(self.compiler.clone())),
            ("isa", Json::Str(self.isa.clone())),
            ("path_length", Json::Num(self.path_length as f64)),
            ("critical_path", Json::Num(self.critical_path as f64)),
            ("scaled_cp", Json::Num(self.scaled_cp as f64)),
            (
                "kernels",
                Json::Arr(
                    self.kernels
                        .iter()
                        .map(|(name, n)| {
                            Json::Arr(vec![Json::Str(name.clone()), Json::Num(*n as f64)])
                        })
                        .collect(),
                ),
            ),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|&(size, cp, ilp)| {
                            Json::Arr(vec![
                                Json::Num(size as f64),
                                Json::Num(cp),
                                Json::Num(ilp),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(f) = &self.fused {
            fields.push(("fused", f.to_json_value()));
        }
        Json::obj(fields)
    }

    /// Parse one measured cell back from its JSON shape.
    pub fn from_json_value(j: &Json) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell: missing string field {key:?}"))
        };
        let int = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cell: missing integer field {key:?}"))
        };
        let kernels = j
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("cell: missing \"kernels\"")?
            .iter()
            .map(|pair| {
                let a = pair.as_arr().filter(|a| a.len() == 2)?;
                Some((a[0].as_str()?.to_string(), a[1].as_u64()?))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("cell: malformed \"kernels\" entry")?;
        let windows = j
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or("cell: missing \"windows\"")?
            .iter()
            .map(|triple| {
                let a = triple.as_arr().filter(|a| a.len() == 3)?;
                Some((a[0].as_u64()? as usize, a[1].as_f64()?, a[2].as_f64()?))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("cell: malformed \"windows\" entry")?;
        // Optional: only fusion-armed cells carry it, and matrices written
        // before the fusion axis existed parse unchanged.
        let fused = match j.get("fused") {
            Some(f) => Some(FusedCell::from_json_value(f)?),
            None => None,
        };
        Ok(ExperimentCell {
            workload: text("workload")?,
            compiler: text("compiler")?,
            isa: text("isa")?,
            path_length: int("path_length")?,
            critical_path: int("critical_path")?,
            scaled_cp: int("scaled_cp")?,
            kernels,
            windows,
            fused,
        })
    }
}

impl FusedCell {
    /// Serialize the fusion measurements (the `"fused"` object inside a
    /// cell's JSON).
    pub fn to_json_value(&self) -> Json {
        let pairs = |v: &[(String, u64)]| {
            Json::Arr(
                v.iter()
                    .map(|(name, n)| Json::Arr(vec![Json::Str(name.clone()), Json::Num(*n as f64)]))
                    .collect(),
            )
        };
        Json::obj(vec![
            ("fused_pairs", Json::Num(self.fused_pairs as f64)),
            ("effective_path_length", Json::Num(self.effective_path_length as f64)),
            ("fused_critical_path", Json::Num(self.fused_critical_path as f64)),
            ("fused_scaled_cp", Json::Num(self.fused_scaled_cp as f64)),
            ("pair_counts", pairs(&self.pair_counts)),
            ("effective_kernels", pairs(&self.effective_kernels)),
        ])
    }

    /// Parse the fusion measurements back from their JSON shape.
    pub fn from_json_value(j: &Json) -> Result<Self, String> {
        let int = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("fused: missing integer field {key:?}"))
        };
        let pairs = |key: &str| -> Result<Vec<(String, u64)>, String> {
            j.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("fused: missing {key:?}"))?
                .iter()
                .map(|pair| {
                    let a = pair.as_arr().filter(|a| a.len() == 2)?;
                    Some((a[0].as_str()?.to_string(), a[1].as_u64()?))
                })
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| format!("fused: malformed {key:?} entry"))
        };
        Ok(FusedCell {
            fused_pairs: int("fused_pairs")?,
            effective_path_length: int("effective_path_length")?,
            fused_critical_path: int("fused_critical_path")?,
            fused_scaled_cp: int("fused_scaled_cp")?,
            pair_counts: pairs("pair_counts")?,
            effective_kernels: pairs("effective_kernels")?,
        })
    }
}

/// Thousands-separated integer, like the paper's tables.
pub fn fmt_u64(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

fn fmt_ms(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(w: &str, compiler: &str, isa: &str, pl: u64, cp: u64) -> ExperimentCell {
        ExperimentCell {
            workload: w.into(),
            compiler: compiler.into(),
            isa: isa.into(),
            path_length: pl,
            critical_path: cp,
            scaled_cp: cp * 6,
            kernels: vec![("k1".into(), pl / 2), ("k2".into(), pl / 2)],
            windows: vec![(4, 2.0, 2.0), (16, 4.0, 4.0)],
            fused: None,
        }
    }

    fn fused_cell(pl: u64) -> FusedCell {
        FusedCell {
            fused_pairs: pl / 10,
            effective_path_length: pl - pl / 10,
            fused_critical_path: 90,
            fused_scaled_cp: 540,
            pair_counts: vec![("slli+add".into(), pl / 20), ("cmp+branch".into(), pl / 20)],
            effective_kernels: vec![("k1".into(), pl / 2 - pl / 20), ("k2".into(), pl / 2 - pl / 20)],
        }
    }

    fn fused_sample() -> ResultMatrix {
        let mut m = sample();
        for c in &mut m.cells {
            c.fused = Some(fused_cell(c.path_length));
        }
        m
    }

    fn sample() -> ResultMatrix {
        ResultMatrix {
            cells: vec![
                cell("STREAM", "gcc-9.2", "AArch64", 1000, 100),
                cell("STREAM", "gcc-9.2", "RISC-V", 1100, 100),
                cell("STREAM", "gcc-12.2", "AArch64", 900, 100),
                cell("STREAM", "gcc-12.2", "RISC-V", 1100, 100),
            ],
            failures: Vec::new(),
        }
    }

    fn failure(w: &str, compiler: &str, isa: &str, kind: &str) -> CellFailure {
        CellFailure {
            workload: w.into(),
            compiler: compiler.into(),
            isa: isa.into(),
            kind: kind.into(),
            detail: format!("injected {kind}"),
            retries: 1,
        }
    }

    fn degraded() -> ResultMatrix {
        let mut m = sample();
        m.cells.retain(|c| !(c.compiler == "gcc-12.2" && c.isa == "RISC-V"));
        m.failures.push(failure("STREAM", "gcc-12.2", "RISC-V", "timeout"));
        // A workload where *every* cell failed must still appear.
        m.failures.push(failure("LBM", "gcc-9.2", "AArch64", "panic"));
        m
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1000), "1,000");
        assert_eq!(fmt_u64(3_350_107_615), "3,350,107,615");
    }

    #[test]
    fn table1_contains_all_cells() {
        let t = sample().table1();
        assert!(t.contains("STREAM"));
        assert!(t.contains("gcc-9.2/AArch64"));
        assert!(t.contains("1,000"));
        assert!(t.contains("Path Length"));
    }

    #[test]
    fn fig1_normalises_to_gcc92_aarch64() {
        let csv = sample().fig1_csv();
        // gcc-12.2/AArch64 kernel k1: 450/1000 = 0.45
        assert!(csv.contains("STREAM,gcc-12.2,AArch64,k1,450,0.450000"), "{csv}");
    }

    #[test]
    fn fig2_only_gcc122() {
        let csv = sample().fig2_csv();
        assert!(!csv.contains("gcc-9.2"));
        assert!(csv.lines().count() > 1);
    }

    #[test]
    fn fig1_emits_err_rows_for_failures() {
        let m = degraded();
        let csv = m.fig1_csv();
        assert!(
            csv.contains("STREAM,gcc-12.2,RISC-V,ERR(timeout),0,0.000000"),
            "failed cell keeps a placeholder row:\n{csv}"
        );
        assert!(
            csv.contains("LBM,gcc-9.2,AArch64,ERR(panic),0,0.000000"),
            "all-failed workload still appears:\n{csv}"
        );
        assert!(csv.contains("STREAM,gcc-9.2,AArch64,k1,500,0.500000"), "healthy rows intact");
        // Every row has the full 6-column shape.
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 6, "malformed row: {line}");
        }
    }

    #[test]
    fn fig2_emits_err_rows_for_gcc122_failures() {
        let m = degraded();
        let csv = m.fig2_csv();
        assert!(csv.contains("STREAM,RISC-V,ERR(timeout),0.000,0.000"), "{csv}");
        assert!(!csv.contains("ERR(panic)"), "gcc-9.2 failures stay out of figure 2:\n{csv}");
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 5, "malformed row: {line}");
        }
    }

    #[test]
    fn cp_result_txt_format() {
        let basic = sample().cp_result_txt(false);
        assert!(basic.contains("STREAM gcc-9.2 AArch64: pathLength=1000 CP=100 ILP=10.0"));
        let scaled = sample().cp_result_txt(true);
        assert!(scaled.contains("CP=600"));
    }

    #[test]
    fn window_averages_format() {
        let t = sample().window_averages_txt();
        assert!(t.contains("STREAM AArch64: 2.000,4.000"));
        assert!(!t.contains("gcc"));
    }

    #[test]
    fn fig2_gnuplot_structure() {
        let g = sample().fig2_gnuplot();
        assert!(g.contains("$data0 << EOD"));
        assert!(g.contains("plot "));
        assert!(g.contains("STREAM RISC-V"));
        assert!(!g.contains("gcc-9.2"), "figure 2 is GCC 12.2 only");
        // Two gcc-12.2 cells -> two data blocks.
        assert_eq!(g.matches("EOD").count(), 4, "two << EOD + two terminators");
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let j = m.to_json();
        let back = ResultMatrix::from_json(&j).unwrap();
        assert_eq!(back.cells.len(), m.cells.len());
        assert_eq!(back.cells[0].path_length, 1000);
        assert!(back.is_complete());
    }

    #[test]
    fn partial_matrix_renders_err_cells() {
        let m = degraded();
        let t1 = m.table1();
        assert!(t1.contains("ERR(timeout)"), "{t1}");
        assert!(t1.contains("gcc-12.2/RISC-V"), "failed column keeps its header:\n{t1}");
        assert!(t1.contains("1,000"), "healthy cells still render");
        assert!(t1.contains("== LBM =="), "all-failed workload still has a section:\n{t1}");
        assert!(t1.contains("ERR(panic)"), "{t1}");
        assert!(!m.is_complete());
        assert_eq!(m.get_failure("STREAM", "gcc-12.2", "RISC-V").unwrap().kind, "timeout");
        let summary = m.failure_summary();
        assert!(summary.contains("ERR(timeout) STREAM gcc-12.2 RISC-V"), "{summary}");
    }

    #[test]
    fn failures_round_trip_through_json() {
        let m = degraded();
        let back = ResultMatrix::from_json(&m.to_json()).unwrap();
        assert_eq!(back.failures.len(), 2);
        let f = back.get_failure("STREAM", "gcc-12.2", "RISC-V").unwrap();
        assert_eq!(f.kind, "timeout");
        assert_eq!(f.detail, "injected timeout");
        assert_eq!(f.retries, 1);
        assert_eq!(back.cells.len(), 3);
    }

    #[test]
    fn pre_fault_tolerance_json_still_parses() {
        // matrix.json files written before the failures field existed.
        let legacy = sample().to_json().replace(",\n  \"failures\": []", "");
        assert!(!legacy.contains("failures"));
        let back = ResultMatrix::from_json(&legacy).unwrap();
        assert_eq!(back.cells.len(), 4);
        assert!(back.failures.is_empty());
    }

    #[test]
    fn ilp_and_runtime() {
        let c = cell("X", "gcc-12.2", "RISC-V", 1000, 100);
        assert_eq!(c.ilp(), 10.0);
        assert!((c.runtime_ms() - 100.0 / 2e6).abs() < 1e-12);
        assert_eq!(c.scaled_ilp(), 1000.0 / 600.0);
    }

    #[test]
    fn unfused_json_carries_no_fused_field() {
        // The byte-identity contract: a matrix without fusion data must
        // serialize exactly as it did before the fusion axis existed.
        let j = sample().to_json();
        assert!(!j.contains("fused"), "{j}");
    }

    #[test]
    fn fused_cells_round_trip_through_json() {
        let m = fused_sample();
        let back = ResultMatrix::from_json(&m.to_json()).unwrap();
        let f = back.cells[0].fused.as_ref().expect("fused data survives");
        assert_eq!(*f, fused_cell(1000));
        assert_eq!(back.cells, m.cells);
    }

    #[test]
    fn fusion_table_shows_effective_columns() {
        let t = fused_sample().fusion_table();
        assert!(t.contains("Effective PL"), "{t}");
        assert!(t.contains("900"), "effective PL for the 1000-cell: {t}");
        assert!(t.contains("10.0%"), "reduction renders: {t}");
        // A matrix without fusion data renders placeholders, not garbage.
        let bare = sample().fusion_table();
        assert!(bare.contains('-'), "{bare}");
    }

    #[test]
    fn fusion_csv_rows_per_pair_kind() {
        let csv = fused_sample().fusion_csv();
        assert!(csv.starts_with("workload,compiler,isa,pair,count,per_kilo_inst\n"));
        assert!(csv.contains("STREAM,gcc-12.2,RISC-V,slli+add,55,50.000"), "{csv}");
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 6, "malformed row: {line}");
        }
        // No fusion data -> header only.
        assert_eq!(sample().fusion_csv().lines().count(), 1);
    }

    #[test]
    fn fig1_gains_effective_columns_only_when_fused() {
        let bare = sample().fig1_csv();
        assert!(bare.starts_with("workload,compiler,isa,kernel,instructions,normalised\n"));
        for line in bare.lines() {
            assert_eq!(line.split(',').count(), 6, "unfused shape unchanged: {line}");
        }
        let csv = fused_sample().fig1_csv();
        assert!(
            csv.starts_with(
                "workload,compiler,isa,kernel,instructions,normalised,effective,effective_normalised\n"
            ),
            "{csv}"
        );
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), 8, "fused rows carry 8 columns: {line}");
        }
        // k1 of the gcc-12.2/AArch64 cell: 450 raw, 450 - 45 effective.
        assert!(csv.contains("STREAM,gcc-12.2,AArch64,k1,450,0.450000,405,0.405000"), "{csv}");
    }
}
