//! CloverLeaf (serial): compressible Euler equations on a 2-D staggered
//! Cartesian grid, reduced to its four hottest kernels.
//!
//! CloverLeaf is a chain of grid sweeps; following the mini-app's hydro
//! cycle we reproduce the kernels that dominate its profile:
//!
//! * `ideal_gas` — equation of state: `p = (g-1) rho e`, `ss = sqrt(g p / rho)`;
//! * `flux_calc` — face volume fluxes from node velocities;
//! * `viscosity` — artificial viscosity from compressive velocity
//!   gradients (a `max(0, ...)`-gated quadratic term);
//! * `pdv` — energy/density update from the velocity divergence;
//! * `advec_cell` — first-order donor-cell (upwind) advection, whose
//!   flux-sign conditionals lower to `fcsel` on AArch64 and a compare +
//!   branch diamond on RISC-V;
//! * `calc_dt` — the CFL timestep reduction (`min` accumulator over
//!   `dx / (soundspeed + |u|)`).
//!
//! Fields live on an `(nx+2) x (ny+2)` halo-padded grid with reflective
//! (frozen-halo) boundaries. The paper runs the default deck; we scale the
//! grid so the default path length lands in the same range as Table 1
//! (~13M instructions at `Paper` size).

use crate::SizeClass;
use kernelgen::*;

/// CloverLeaf parameters.
#[derive(Debug, Clone, Copy)]
pub struct CloverParams {
    /// Interior cells in x.
    pub nx: u64,
    /// Interior cells in y.
    pub ny: u64,
    /// Hydro steps.
    pub steps: u64,
}

impl CloverParams {
    /// Parameters per size class.
    pub fn for_size(size: SizeClass) -> Self {
        match size {
            SizeClass::Test => CloverParams { nx: 8, ny: 8, steps: 2 },
            SizeClass::Small => CloverParams { nx: 32, ny: 32, steps: 4 },
            SizeClass::Paper => CloverParams { nx: 96, ny: 96, steps: 10 },
        }
    }
}

/// Build CloverLeaf at the given size class.
pub fn build(size: SizeClass) -> KernelProgram {
    build_with(CloverParams::for_size(size))
}

/// Build CloverLeaf with explicit parameters.
pub fn build_with(params: CloverParams) -> KernelProgram {
    let CloverParams { nx, ny, steps } = params;
    let w = nx + 2;
    let h = ny + 2;
    let len = w * h;
    let gamma = 1.4;
    let dt = 0.04;

    let mut p = KernelProgram::new("CloverLeaf");

    // State fields (initial shock-tube-like left/right split).
    let mut density_vals = vec![1.0f64; len as usize];
    let mut energy_vals = vec![2.5f64; len as usize];
    for y in 0..h {
        for x in 0..w {
            if x >= w / 2 {
                density_vals[(y * w + x) as usize] = 0.125;
                energy_vals[(y * w + x) as usize] = 2.0;
            }
        }
    }
    let density = p.array("density", len, ArrayInit::Values(density_vals));
    let energy = p.array("energy", len, ArrayInit::Values(energy_vals));
    let pressure = p.array("pressure", len, ArrayInit::Zero);
    let soundspeed = p.array("soundspeed", len, ArrayInit::Zero);
    // Node velocities, seeded with a smooth field.
    let vel_init: Vec<f64> = (0..len)
        .map(|i| {
            let x = (i % w) as f64 / w as f64;
            let y = (i / w) as f64 / h as f64;
            0.1 * (x - 0.5) * (y - 0.3)
        })
        .collect();
    let xvel = p.array("xvel", len, ArrayInit::Values(vel_init.clone()));
    let yvel = p.array("yvel", len, ArrayInit::Values(vel_init));
    let vol_flux_x = p.array("vol_flux_x", len, ArrayInit::Zero);
    let vol_flux_y = p.array("vol_flux_y", len, ArrayInit::Zero);

    let center = (w + 1) as i64;
    let at = |arr: ArrayId, dx: i64, dy: i64| Access {
        arr,
        strides: vec![w as i64, 1],
        offset: center + dy * w as i64 + dx,
    };

    // --- ideal_gas ---------------------------------------------------------
    let t_p = TempId(0);
    p.kernel(Kernel {
        name: "ideal_gas".into(),
        dims: vec![ny, nx],
        accs: vec![],
        body: vec![
            Stmt::Def {
                temp: t_p,
                expr: Expr::mul(
                    Expr::Const(gamma - 1.0),
                    Expr::mul(Expr::Load(at(density, 0, 0)), Expr::Load(at(energy, 0, 0))),
                ),
            },
            Stmt::Store { access: at(pressure, 0, 0), value: Expr::Temp(t_p) },
            Stmt::Store {
                access: at(soundspeed, 0, 0),
                value: Expr::sqrt(Expr::div(
                    Expr::mul(Expr::Const(gamma), Expr::Temp(t_p)),
                    Expr::Load(at(density, 0, 0)),
                )),
            },
        ],
    });

    // --- flux_calc -----------------------------------------------------------
    p.kernel(Kernel {
        name: "flux_calc".into(),
        dims: vec![ny, nx],
        accs: vec![],
        body: vec![
            Stmt::Store {
                access: at(vol_flux_x, 0, 0),
                value: Expr::mul(
                    Expr::Const(0.5 * dt),
                    Expr::add(Expr::Load(at(xvel, 0, 0)), Expr::Load(at(xvel, 0, 1))),
                ),
            },
            Stmt::Store {
                access: at(vol_flux_y, 0, 0),
                value: Expr::mul(
                    Expr::Const(0.5 * dt),
                    Expr::add(Expr::Load(at(yvel, 0, 0)), Expr::Load(at(yvel, 1, 0))),
                ),
            },
        ],
    });

    // --- viscosity -----------------------------------------------------------
    // q = rho * (2 du)^2 gated on compression (du < 0), the shape of
    // CloverLeaf's artificial-viscosity kernel.
    let viscosity = p.array("viscosity", len, ArrayInit::Zero);
    {
        let t_du = TempId(0);
        p.kernel(Kernel {
            name: "viscosity".into(),
            dims: vec![ny, nx],
            accs: vec![],
            body: vec![
                Stmt::Def {
                    temp: t_du,
                    expr: Expr::sub(Expr::Load(at(xvel, 1, 0)), Expr::Load(at(xvel, 0, 0))),
                },
                Stmt::Store {
                    access: at(viscosity, 0, 0),
                    value: Expr::Select {
                        cmp: CmpOp::Lt,
                        a: Box::new(Expr::Temp(t_du)),
                        b: Box::new(Expr::Const(0.0)),
                        t: Box::new(Expr::mul(
                            Expr::Load(at(density, 0, 0)),
                            Expr::mul(
                                Expr::mul(Expr::Const(4.0), Expr::Temp(t_du)),
                                Expr::Temp(t_du),
                            ),
                        )),
                        e: Box::new(Expr::Const(0.0)),
                    },
                },
            ],
        });
    }

    // --- PdV -------------------------------------------------------------------
    // total_flux = dvx + dvy; energy -= p/rho * total_flux; density *= (1 - tf)
    let t_tf = TempId(0);
    p.kernel(Kernel {
        name: "pdv".into(),
        dims: vec![ny, nx],
        accs: vec![],
        body: vec![
            Stmt::Def {
                temp: t_tf,
                expr: Expr::add(
                    Expr::sub(Expr::Load(at(vol_flux_x, 1, 0)), Expr::Load(at(vol_flux_x, 0, 0))),
                    Expr::sub(Expr::Load(at(vol_flux_y, 0, 1)), Expr::Load(at(vol_flux_y, 0, 0))),
                ),
            },
            Stmt::Store {
                access: at(energy, 0, 0),
                value: Expr::sub(
                    Expr::Load(at(energy, 0, 0)),
                    Expr::mul(
                        Expr::div(Expr::Load(at(pressure, 0, 0)), Expr::Load(at(density, 0, 0))),
                        Expr::Temp(t_tf),
                    ),
                ),
            },
            Stmt::Store {
                access: at(density, 0, 0),
                value: Expr::mul(
                    Expr::Load(at(density, 0, 0)),
                    Expr::sub(Expr::Const(1.0), Expr::Temp(t_tf)),
                ),
            },
        ],
    });

    // --- advec_cell (donor-cell upwind in x) --------------------------------
    // upwind density depends on the sign of the face flux.
    let donor = Expr::Select {
        cmp: CmpOp::Lt,
        a: Box::new(Expr::Const(0.0)),
        b: Box::new(Expr::Load(at(vol_flux_x, 0, 0))),
        t: Box::new(Expr::Load(at(density, -1, 0))),
        e: Box::new(Expr::Load(at(density, 0, 0))),
    };
    let donor_right = Expr::Select {
        cmp: CmpOp::Lt,
        a: Box::new(Expr::Const(0.0)),
        b: Box::new(Expr::Load(at(vol_flux_x, 1, 0))),
        t: Box::new(Expr::Load(at(density, 0, 0))),
        e: Box::new(Expr::Load(at(density, 1, 0))),
    };
    p.kernel(Kernel {
        name: "advec_cell".into(),
        dims: vec![ny, nx],
        accs: vec![],
        body: vec![Stmt::Store {
            access: at(density, 0, 0),
            value: Expr::add(
                Expr::Load(at(density, 0, 0)),
                Expr::sub(
                    Expr::mul(Expr::Load(at(vol_flux_x, 0, 0)), donor),
                    Expr::mul(Expr::Load(at(vol_flux_x, 1, 0)), donor_right),
                ),
            ),
        }],
    });

    // --- calc_dt: CFL timestep via a min-reduction ------------------------
    let dt_out = p.array("dt", 1, ArrayInit::Zero);
    {
        let cell_dx = 1.0 / nx as f64;
        p.kernel(Kernel {
            name: "calc_dt".into(),
            dims: vec![ny, nx],
            accs: vec![AccDecl { init: 1e10, store_to: Some((dt_out, 0)) }],
            body: vec![Stmt::Accum {
                acc: AccId(0),
                op: BinOp::Min,
                value: Expr::div(
                    Expr::Const(cell_dx),
                    Expr::add(
                        Expr::Load(at(soundspeed, 0, 0)),
                        Expr::abs(Expr::Load(at(xvel, 0, 0))),
                    ),
                ),
            }],
        });
    }

    p.repeat = steps;
    p.checksum_arrays = vec![density, energy, pressure, viscosity, dt_out];
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_stay_finite_and_positive() {
        let p = build_with(CloverParams { nx: 8, ny: 8, steps: 3 });
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        assert!(r.checksum.is_finite());
        for v in &r.arrays["density"] {
            assert!(v.is_finite() && *v > 0.0, "density must stay positive: {v}");
        }
        for v in &r.arrays["soundspeed"] {
            assert!(v.is_finite() && *v >= 0.0);
        }
    }

    #[test]
    fn shock_interface_moves_mass() {
        let p = build_with(CloverParams { nx: 8, ny: 8, steps: 3 });
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        let d = &r.arrays["density"];
        // The initial left/right split (1.0 / 0.125) must evolve.
        let w = 10usize;
        let mid_left = d[5 * w + 4];
        assert_ne!(mid_left, 1.0, "left state should have evolved");
    }

    #[test]
    fn kernel_names() {
        let p = build(SizeClass::Test);
        let names: Vec<&str> = p.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["ideal_gas", "flux_calc", "viscosity", "pdv", "advec_cell", "calc_dt"]
        );
    }
}
