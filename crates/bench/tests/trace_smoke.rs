//! End-to-end smoke test of the trace pipeline through the shipped
//! binaries: `make_tables elves` builds an ELF, `run_elf --trace-out`
//! captures a trace, `trace_tool` inspects/verifies/diffs it, and
//! `make_tables --trace-dir` captures then replays a whole matrix with
//! byte-identical output.

use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    // Start clean: cached traces from a previous `cargo test` would turn
    // this run's capture legs into replay legs.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(bin: &str, dir: &PathBuf, args: &[&str]) -> (i32, String, String) {
    let exe = match bin {
        "make_tables" => env!("CARGO_BIN_EXE_make_tables"),
        "run_elf" => env!("CARGO_BIN_EXE_run_elf"),
        "trace_tool" => env!("CARGO_BIN_EXE_trace_tool"),
        other => panic!("unknown bin {other}"),
    };
    let out = Command::new(exe).args(args).current_dir(dir).output().expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn capture_inspect_and_diff_through_the_binaries() {
    let dir = scratch("tracecli");

    let (code, _, stderr) = run("make_tables", &dir, &["elves", "--size", "test"]);
    assert_eq!(code, 0, "elves must build:\n{stderr}");

    let elf = "results/bin/stream-gcc-12.2-riscv64.elf";
    let (code, stdout, stderr) = run(
        "run_elf",
        &dir,
        &[elf, "--trace-out", "stream.trace", "--spans-out", "stream.folded"],
    );
    assert_eq!(code, 0, "run_elf must pass:\n{stderr}");
    assert!(stdout.contains("trace        : stream.trace"), "capture line:\n{stdout}");
    assert!(stdout.contains("spans        :"), "spans line:\n{stdout}");

    // The collapsed-stack export is flamegraph grammar: `stack n` lines.
    let folded = std::fs::read_to_string(dir.join("stream.folded")).expect("spans written");
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("stack <us>");
        assert!(!stack.is_empty(), "{line}");
        n.parse::<u64>().expect("numeric self time");
    }
    assert!(folded.contains("emulate"), "emulate span present:\n{folded}");

    let (code, stdout, _) = run("trace_tool", &dir, &["info", "stream.trace"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("ICTR v1"), "{stdout}");
    assert!(stdout.contains("RISC-V"), "{stdout}");

    let (code, stdout, _) = run("trace_tool", &dir, &["verify", "stream.trace"]);
    assert_eq!(code, 0, "clean capture must verify:\n{stdout}");
    assert!(stdout.contains("OK"), "{stdout}");

    let (code, stdout, _) = run("trace_tool", &dir, &["dump", "stream.trace", "--limit", "3"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("IntAlu") || stdout.contains("Load"), "{stdout}");

    // Same trace diffed against itself: identical, exit 0.
    let (code, stdout, _) =
        run("trace_tool", &dir, &["diff", "stream.trace", "stream.trace"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("identical"), "{stdout}");

    // Against a different ISA's run: divergence reported, exit 1.
    let (code, _, stderr) = run(
        "run_elf",
        &dir,
        &["results/bin/stream-gcc-12.2-aarch64.elf", "--trace-out", "a64.trace"],
    );
    assert_eq!(code, 0, "{stderr}");
    let (code, stdout, _) = run("trace_tool", &dir, &["diff", "stream.trace", "a64.trace"]);
    assert_eq!(code, 1, "differing traces must exit 1:\n{stdout}");
    assert!(stdout.contains("first divergence"), "{stdout}");

    // Corrupt one payload byte near the end: verify must fail loudly.
    let trace_path = dir.join("stream.trace");
    let mut bytes = std::fs::read(&trace_path).unwrap();
    let n = bytes.len();
    bytes[n - 100] ^= 0x01;
    std::fs::write(dir.join("bad.trace"), &bytes).unwrap();
    let (code, _, stderr) = run("trace_tool", &dir, &["verify", "bad.trace"]);
    assert_eq!(code, 1, "corruption must flip the exit code");
    assert!(stderr.contains("CORRUPT"), "{stderr}");
}

#[test]
fn matrix_replay_is_byte_identical_and_counted() {
    let dir = scratch("tracedir");

    let (code, live, stderr) = run(
        "make_tables",
        &dir,
        &["table1", "--size", "test", "--trace-dir", "traces", "--metrics", "cap.json"],
    );
    assert_eq!(code, 0, "capture leg:\n{stderr}");
    let cap = std::fs::read_to_string(dir.join("cap.json")).expect("metrics written");
    assert!(cap.contains("20 capture(s)"), "capture note: {cap}");

    let (code, replayed, stderr) = run(
        "make_tables",
        &dir,
        &["table1", "--size", "test", "--trace-dir", "traces", "--metrics", "rep.json"],
    );
    assert_eq!(code, 0, "replay leg:\n{stderr}");
    assert_eq!(live, replayed, "replayed table1 must be byte-identical");

    let rep = std::fs::read_to_string(dir.join("rep.json")).expect("metrics written");
    assert!(rep.contains("20 replay(s)"), "replay note: {rep}");
    assert!(rep.contains("trace_replay_speedup"), "speedup gauge: {rep}");

    // Every cached trace passes a full integrity verify.
    let a_trace = dir.join("traces/STREAM-gcc-12.2-RISC-V-test.trace");
    assert!(a_trace.exists(), "cache file uses the documented naming scheme");
    let (code, stdout, _) =
        run("trace_tool", &dir, &["verify", a_trace.to_str().unwrap()]);
    assert_eq!(code, 0, "cached trace verifies:\n{stdout}");
}

#[test]
fn armed_faults_disable_the_trace_cache_for_the_targeted_cell() {
    let dir = scratch("tracefault");
    let (code, _, stderr) = run(
        "make_tables",
        &dir,
        &[
            "table1", "--size", "test", "--trace-dir", "traces",
            "--inject", "STREAM/gcc-12.2/RISC-V:trap@1000",
        ],
    );
    assert_eq!(code, 0, "degraded run exits 0:\n{stderr}");
    // The faulted cell must not leave a capture behind (an injected-fault
    // run is not a reusable measurement); untargeted cells still cache.
    assert!(
        !dir.join("traces/STREAM-gcc-12.2-RISC-V-test.trace").exists(),
        "no capture for the faulted cell"
    );
    assert!(
        dir.join("traces/STREAM-gcc-12.2-AArch64-test.trace").exists(),
        "healthy cells still capture"
    );
    let captures = std::fs::read_dir(dir.join("traces")).expect("dir created").count();
    assert_eq!(captures, 19, "every cell but the faulted one captures");
}
