//! Run telemetry: metrics, spans, guest profiling and structured reports.
//!
//! This crate is deliberately std-only — it hand-rolls its JSON
//! representation ([`json::Json`]) so the whole workspace builds with no
//! registry access. Four pieces:
//!
//! - [`MetricsRegistry`]: named counters, gauges, and log2-bucketed
//!   [`Histogram`]s.
//! - [`Timeline`]: hierarchical RAII wall-clock spans
//!   (`let _g = telemetry::global().enter("compile");`).
//! - [`ProfilingObserver`]: a [`simcore::Observer`] that streams the
//!   retirement trace into per-region / per-PC-bucket / per-group
//!   histograms in bounded memory.
//! - [`RunReport`]: a serializable record of one tool invocation (stage
//!   timings, host MIPS, guest profile) written by `--metrics <path>`.

#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod sampler;
pub mod span;

pub use events::{Event, EventLog};
pub use json::Json;
pub use metrics::{bucket_index, bucket_low, Histogram, MetricsRegistry};
pub use profile::{group_index, ProfilingObserver};
pub use report::RunReport;
pub use sampler::{HotBlockProfile, Sampler};
pub use span::{SpanGuard, SpanRecord, Timeline};

/// The one `host_mips` definition, re-exported so CLI code can reach it
/// through either crate without duplicating the formula.
pub use simcore::host_mips;

use std::sync::{Mutex, OnceLock};

/// A timeline plus a metrics registry — the per-process telemetry hub.
/// Usually accessed through [`global()`], but tests can make their own.
pub struct Telemetry {
    timeline: Timeline,
    metrics: Mutex<MetricsRegistry>,
    events: EventLog,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Fresh hub with an empty timeline, registry, and event log.
    pub fn new() -> Self {
        Telemetry {
            timeline: Timeline::new(),
            metrics: Mutex::new(MetricsRegistry::new()),
            events: EventLog::new(),
        }
    }

    /// The span timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Open a span on the timeline (RAII: closes when the guard drops).
    pub fn enter(&self, name: &str) -> SpanGuard<'_> {
        self.timeline.enter(name)
    }

    /// Run `f` inside a span named `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.timeline.time(name, f)
    }

    /// Add `v` to the named counter.
    pub fn counter_add(&self, name: &str, v: u64) {
        self.metrics.lock().unwrap().counter_add(name, v);
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.lock().unwrap().counter(name)
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.metrics.lock().unwrap().gauge_set(name, v);
    }

    /// Record a sample into the named histogram.
    pub fn histogram_record(&self, name: &str, v: u64) {
        self.metrics.lock().unwrap().histogram_record(name, v);
    }

    /// The structured event log (bounded ring; see [`events`]).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Emit a structured event (shorthand for `events().emit(...)`).
    pub fn event(&self, kind: &str, fields: &[(&str, Json)]) {
        self.events.emit(kind, fields);
    }

    /// Snapshot of the registry.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.metrics.lock().unwrap().clone()
    }

    /// JSON snapshot of the registry.
    pub fn metrics_json(&self) -> Json {
        self.metrics.lock().unwrap().to_json()
    }
}

/// The process-wide telemetry hub. First call initializes it; the timeline
/// epoch is that moment.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Format a `u64` with `_` thousands separators (`1_234_567`), matching the
/// style the analysis tables use.
pub fn fmt_u64(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_counters_and_spans() {
        let t = Telemetry::new();
        t.counter_add("cells", 2);
        t.counter_add("cells", 1);
        assert_eq!(t.counter("cells"), 3);
        let v = t.time("stage", || 7);
        assert_eq!(v, 7);
        assert_eq!(t.timeline().records().len(), 1);
    }

    #[test]
    fn global_is_shared() {
        global().counter_add("test_global_shared", 1);
        assert!(global().counter("test_global_shared") >= 1);
    }

    #[test]
    fn fmt_u64_groups() {
        assert_eq!(fmt_u64(0), "0");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(fmt_u64(1000), "1_000");
        assert_eq!(fmt_u64(1234567), "1_234_567");
    }
}
