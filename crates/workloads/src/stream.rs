//! STREAM (McCalpin): sustained-memory-bandwidth kernels.
//!
//! Four kernels applied to `f64` arrays `a`, `b`, `c`:
//!
//! * `copy`:  `c[i] = a[i]`
//! * `scale`: `b[i] = s * c[i]`
//! * `add`:   `c[i] = a[i] + b[i]`
//! * `triad`: `a[i] = b[i] + s * c[i]`
//!
//! The paper runs the reference code: arrays of 10,000,000 elements,
//! NTIMES=10 timing iterations, `s = 3.0`. Initial values follow the
//! reference (`a=1, b=2, c=0`).

use crate::SizeClass;
use kernelgen::*;

/// STREAM parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamParams {
    /// Array length in elements.
    pub n: u64,
    /// Timing iterations (NTIMES).
    pub ntimes: u64,
}

impl StreamParams {
    /// Parameters for a size class (Paper = the paper's N=10M, NTIMES=10).
    pub fn for_size(size: SizeClass) -> Self {
        match size {
            SizeClass::Test => StreamParams { n: 64, ntimes: 2 },
            SizeClass::Small => StreamParams { n: 20_000, ntimes: 3 },
            SizeClass::Paper => StreamParams { n: 10_000_000, ntimes: 10 },
        }
    }
}

/// Build STREAM at the given size class.
pub fn build(size: SizeClass) -> KernelProgram {
    build_with(StreamParams::for_size(size))
}

/// Build STREAM with explicit parameters.
pub fn build_with(params: StreamParams) -> KernelProgram {
    let StreamParams { n, ntimes } = params;
    let mut p = KernelProgram::new("STREAM");
    let a = p.array("a", n, ArrayInit::Fill(1.0));
    let b = p.array("b", n, ArrayInit::Fill(2.0));
    let c = p.array("c", n, ArrayInit::Fill(0.0));
    let unit = |arr| Access { arr, strides: vec![1], offset: 0 };
    let scalar = 3.0;

    p.kernel(Kernel {
        name: "copy".into(),
        dims: vec![n],
        accs: vec![],
        body: vec![Stmt::Store { access: unit(c), value: Expr::Load(unit(a)) }],
    });
    p.kernel(Kernel {
        name: "scale".into(),
        dims: vec![n],
        accs: vec![],
        body: vec![Stmt::Store {
            access: unit(b),
            value: Expr::mul(Expr::Const(scalar), Expr::Load(unit(c))),
        }],
    });
    p.kernel(Kernel {
        name: "add".into(),
        dims: vec![n],
        accs: vec![],
        body: vec![Stmt::Store {
            access: unit(c),
            value: Expr::add(Expr::Load(unit(a)), Expr::Load(unit(b))),
        }],
    });
    p.kernel(Kernel {
        name: "triad".into(),
        dims: vec![n],
        accs: vec![],
        body: vec![Stmt::Store {
            access: unit(a),
            value: Expr::mul_add(Expr::Const(scalar), Expr::Load(unit(c)), Expr::Load(unit(b))),
        }],
    });
    p.repeat = ntimes;
    p.checksum_arrays = vec![a, b, c];
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_reference_values() {
        // The STREAM verification recurrence after k iterations.
        let p = build_with(StreamParams { n: 16, ntimes: 3 });
        let r = kernelgen::interpret(&p, &Personality::gcc122());
        let (mut a, mut b, mut c) = (1.0f64, 2.0f64, 0.0f64);
        for _ in 0..3 {
            c = a;
            b = 3.0 * c;
            c = a + b;
            a = b + 3.0 * c;
        }
        assert_eq!(r.arrays["a"][7], a);
        assert_eq!(r.arrays["b"][0], b);
        assert_eq!(r.arrays["c"][15], c);
    }

    #[test]
    fn four_kernels_with_paper_names() {
        let p = build(SizeClass::Test);
        let names: Vec<&str> = p.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["copy", "scale", "add", "triad"]);
    }
}
