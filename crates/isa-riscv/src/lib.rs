#![warn(missing_docs)]
//! RV64G (RV64IMAFD) instruction set: binary encoder, decoder, assembler,
//! disassembler and functional executor.
//!
//! This is the RISC-V half of the paper's comparison. The paper compiled
//! workloads with `-march=rv64g` (no compressed instructions, matching the
//! paper's choice to omit the C extension since Armv8-a has no Thumb), so
//! every instruction is a 32-bit word.
//!
//! The crate implements the full scalar user-level subset the workloads
//! exercise plus everything needed for round-trip encode/decode property
//! testing: RV64I, M (multiply/divide), A (atomics), and F/D scalar
//! floating point.

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod inst;

pub use asm::RvAsm;
pub use decode::decode;
pub use disasm::disassemble;
pub use encode::encode;
pub use exec::RiscVExecutor;
pub use inst::*;
