//! Run a statically linked ELF produced by `make_tables elves` (or any
//! simple static ELF in the supported subset) through the emulation core
//! and print the paper's metrics — the equivalent of the artifact's
//! "run all relevant (pre-compiled) binaries" step.
//!
//! ```sh
//! cargo run --release -p bench --bin make_tables -- elves --size small
//! cargo run --release -p bench --bin run_elf -- results/bin/stream-gcc-12.2-riscv64.elf
//! ```
//!
//! Options:
//! - `--metrics <path>`: write a structured [`telemetry::RunReport`]
//!   (stage spans, host MIPS, instruction-group mix, hot regions, and
//!   per-observer overhead attribution from one calibration run per
//!   observer) as JSON.
//! - `--trace-out <path>`: capture the retired-instruction stream to a
//!   compact binary `.trace` file (inspect with the `trace_tool` bin,
//!   replay through `make_tables --trace-dir`).
//! - `--spans-out <path>`: write the run's span tree as flamegraph-ready
//!   collapsed stacks (`stack;substack <self-us>` lines).
//! - `--sample[=PERIOD_US]`: attach the hot-block sampling profiler
//!   (default period 250 µs): a background thread attributes host wall
//!   time to guest PCs, printed as a top-N hot-block table, embedded in
//!   `--metrics`, and appended to `--spans-out` as `sampler;...` stacks.
//! - `--events <path>`: drain the structured event log (watchdog trips,
//!   fault injections, ...) to a JSON Lines file after the run.
//! - `--progress[=N]`: heartbeat line on stderr every N retirements
//!   (default 50M); also honoured via `ISACMP_PROGRESS=N`.
//! - `--deadline-secs <s>`: wall-clock watchdog; a trip exits 124.
//! - `--inject <fault>`: deterministic fault injection (`trap@N`,
//!   `fetch@N[:MASK]`, `read@N[:BIT]`).
//! - `--campaign <seed>:<n>`: seeded multi-fault campaign (`n` sampled
//!   faults); mutually exclusive with `--inject`. The fired count is
//!   reported after the run.
//!
//! Exits with the guest's exit code (124 on a watchdog trip).

use isacmp::telemetry::sampler::Sampler;
use isacmp::{
    AArch64Executor, Campaign, CampaignSpec, CpuState, DualCriticalPath, EmulationCore,
    FaultInjector, FaultPlan, IsaKind, Observer, PathLength, Program, ProfilingObserver,
    RiscVExecutor, RunReport, SimError, TraceMeta, TraceWriter, Tx2Latency, WindowedCp,
    DEFAULT_CAMPAIGN_WINDOW,
};
use isacmp::SampleSnapshot;
use std::sync::Arc;

/// Publish stride for `--sample`: one `(pc, instret)` publish every 2^8 =
/// 256 retirements — ~70 µs apart at 3.7 MIPS, well under the sampling
/// period, for a few atomic stores per thousand instructions.
const SAMPLE_LOG2_STRIDE: u32 = 8;

/// Exit code for a watchdog trip, matching the `timeout(1)` convention.
const EXIT_TIMEOUT: i32 = 124;

struct Args {
    elf: String,
    metrics: Option<String>,
    trace_out: Option<String>,
    spans_out: Option<String>,
    sample: Option<std::time::Duration>,
    events: Option<String>,
    progress: Option<u64>,
    deadline: Option<std::time::Duration>,
    inject: Option<FaultPlan>,
    campaign: Option<Campaign>,
}

fn parse_args() -> Result<Args, String> {
    let mut elf = None;
    let mut metrics = None;
    let mut trace_out = None;
    let mut spans_out = None;
    let mut sample = None;
    let mut events = None;
    let mut progress = None;
    let mut deadline = None;
    let mut inject = None;
    let mut campaign = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--metrics" {
            metrics = Some(it.next().ok_or("--metrics needs a path")?);
        } else if a == "--sample" {
            sample = Some(Sampler::DEFAULT_PERIOD);
        } else if let Some(us) = a.strip_prefix("--sample=") {
            let us: u64 = us.parse().map_err(|_| format!("bad --sample period {us:?}"))?;
            sample = Some(std::time::Duration::from_micros(us));
        } else if a == "--events" {
            events = Some(it.next().ok_or("--events needs a path")?);
        } else if a == "--trace-out" {
            trace_out = Some(it.next().ok_or("--trace-out needs a path")?);
        } else if a == "--spans-out" {
            spans_out = Some(it.next().ok_or("--spans-out needs a path")?);
        } else if a == "--progress" {
            progress = Some(1);
        } else if let Some(n) = a.strip_prefix("--progress=") {
            progress = Some(n.parse::<u64>().map_err(|_| format!("bad --progress value {n:?}"))?);
        } else if a == "--deadline-secs" {
            let s = it.next().ok_or("--deadline-secs needs a value")?;
            let secs: f64 =
                s.parse().map_err(|_| format!("bad --deadline-secs value {s:?}"))?;
            deadline = Some(std::time::Duration::from_secs_f64(secs));
        } else if a == "--inject" {
            let s = it.next().ok_or("--inject needs a fault spec")?;
            inject = Some(FaultPlan::parse(&s)?);
        } else if a == "--campaign" {
            let s = it.next().ok_or("--campaign needs <seed>:<n-faults>")?;
            let spec = CampaignSpec::parse(&s)?;
            campaign = Some(Campaign::sample(spec.seed, spec.n_faults, DEFAULT_CAMPAIGN_WINDOW));
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a:?}"));
        } else if elf.is_none() {
            elf = Some(a);
        } else {
            return Err(format!("unexpected argument {a:?}"));
        }
    }
    if inject.is_some() && campaign.is_some() {
        return Err("--inject and --campaign are mutually exclusive".into());
    }
    Ok(Args {
        elf: elf.ok_or(
            "usage: run_elf <binary.elf> [--metrics out.json] [--trace-out out.trace] \
             [--spans-out out.folded] [--sample[=PERIOD_US]] [--events out.jsonl] \
             [--progress[=N]] [--deadline-secs s] [--inject fault] [--campaign seed:n]",
        )?,
        metrics,
        trace_out,
        spans_out,
        sample,
        events,
        progress,
        deadline,
        inject,
        campaign,
    })
}

enum RunFailure {
    Load(SimError),
    Guest { err: SimError, pc: u64, instret: u64 },
}

fn run(
    program: &Program,
    obs: &mut [&mut dyn Observer],
    deadline: Option<std::time::Duration>,
    injector: Option<Box<dyn FaultInjector>>,
    sample: Option<Arc<SampleSnapshot>>,
) -> Result<(CpuState, isacmp::RunStats), RunFailure> {
    fn core_for<E: isacmp::IsaExecutor>(
        exec: E,
        deadline: Option<std::time::Duration>,
        injector: Option<Box<dyn FaultInjector>>,
        sample: Option<Arc<SampleSnapshot>>,
    ) -> EmulationCore<E> {
        let mut core = EmulationCore::new(exec);
        if let Some(d) = deadline {
            core = core.with_deadline(d);
        }
        if let Some(inj) = injector {
            core = core.with_injector(inj);
        }
        if let Some(s) = sample {
            core = core.with_sampling(s, SAMPLE_LOG2_STRIDE);
        }
        core
    }
    let mut st = CpuState::new();
    program.load(&mut st).map_err(RunFailure::Load)?;
    let result = match program.isa {
        IsaKind::RiscV => {
            core_for(RiscVExecutor::new(), deadline, injector, sample).run(&mut st, obs)
        }
        IsaKind::AArch64 => {
            core_for(AArch64Executor::new(), deadline, injector, sample).run(&mut st, obs)
        }
    };
    match result {
        Ok(stats) => Ok((st, stats)),
        Err(err) => Err(RunFailure::Guest { err, pc: st.pc, instret: st.instret }),
    }
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(n) = args.progress {
        // The emulation core reads this when constructed.
        std::env::set_var("ISACMP_PROGRESS", n.to_string());
    }
    let path = &args.elf;
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let program = Program::from_elf(&bytes).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let tel = isacmp::telemetry::global();
    let mut pl = PathLength::new(&program.regions);
    let mut cp = DualCriticalPath::new(Tx2Latency);
    let mut wcp = WindowedCp::paper();
    let mut profile = ProfilingObserver::new(&program.regions);

    // Ad-hoc ELF runs are not matrix cells, so the provenance header names
    // the file rather than a (workload, compiler, size) triple.
    let trace_meta = TraceMeta {
        workload: std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "elf".into()),
        compiler: "elf".into(),
        isa: isacmp::isa_label(program.isa).to_string(),
        size: "elf".into(),
        regions: program.regions.clone(),
    };
    let mut tracer = args.trace_out.as_ref().map(|p| {
        TraceWriter::create(std::path::Path::new(p), &trace_meta).unwrap_or_else(|e| {
            eprintln!("cannot create trace file {p}: {e}");
            std::process::exit(1);
        })
    });

    if let Some(plan) = &args.inject {
        eprintln!("fault injection armed: {}", plan.describe());
    }
    if let Some(c) = &args.campaign {
        eprintln!("{}", c.describe());
        for plan in c.plans() {
            eprintln!("  {}", plan.spec());
        }
        tel.counter_add("faults_scheduled", c.len() as u64);
    }
    let injector: Option<Box<dyn FaultInjector>> = match (&args.inject, &args.campaign) {
        (Some(plan), _) => Some(Box::new(plan.clone())),
        (None, Some(c)) => Some(Box::new(c.clone())),
        (None, None) => None,
    };
    let report_fired = || {
        if let Some(c) = &args.campaign {
            eprintln!("campaign: {} of {} scheduled fault(s) fired", c.fired_count(), c.len());
            isacmp::telemetry::global().counter_add("faults_fired", c.fired_count());
        }
    };
    // Start the sampler before the guest so the whole run is covered; it
    // stops (and its thread joins) immediately after, so the calibration
    // runs below are never sampled.
    let snapshot = args.sample.map(|_| Arc::new(SampleSnapshot::new()));
    let sampler = match (&snapshot, args.sample) {
        (Some(snap), Some(period)) => Some(Sampler::start(Arc::clone(snap), period)),
        _ => None,
    };
    let (st, stats) = {
        let _span = tel.enter("emulate");
        let mut obs: Vec<&mut dyn Observer> = vec![&mut pl, &mut cp, &mut wcp, &mut profile];
        if let Some(t) = tracer.as_mut() {
            obs.push(t);
        }
        run(&program, &mut obs, args.deadline, injector, snapshot.clone()).unwrap_or_else(|f| {
            match f {
                RunFailure::Load(e) => eprintln!("cannot load {path}: {e}"),
                RunFailure::Guest { err, pc, instret } => {
                    report_fired();
                    eprintln!(
                        "guest fault: {err} (pc={pc:#x}, after {instret} retired instructions)"
                    );
                    if err.is_watchdog() {
                        std::process::exit(EXIT_TIMEOUT);
                    }
                }
            }
            std::process::exit(1);
        })
    };
    let hot_blocks = sampler.map(|s| s.stop().attribute(&program.regions));
    report_fired();
    tel.counter_add("instructions_retired", stats.retired);

    println!("{path}");
    println!("  isa          : {}", program.isa);
    println!("  exit code    : {}", stats.exit_code);
    println!("  path length  : {}", pl.total());
    let r = cp.unit();
    println!("  critical path: {}  (ILP {:.0}, 2GHz runtime {:.4} ms)", r.critical_path, r.ilp(), r.runtime_ms());
    let s = cp.scaled();
    println!("  scaled CP    : {}  (ILP {:.0}, 2GHz runtime {:.4} ms)", s.critical_path, s.ilp(), s.runtime_ms());
    println!("  per kernel   :");
    for (name, count) in pl.by_kernel() {
        println!("    {name:<14} {count}");
    }
    println!("  windowed ILP :");
    for w in wcp.stats() {
        println!("    window {:<6} mean CP {:>10.2}  mean ILP {:>8.2}", w.size, w.mean_cp(), w.mean_ilp());
    }
    if !st.output.is_empty() {
        println!("  guest output : {:?}", st.output_string());
    }
    if let Some(hb) = &hot_blocks {
        for line in hb.table(10).lines() {
            println!("  {line}");
        }
    }

    if let (Some(t), Some(p)) = (tracer.take(), &args.trace_out) {
        match t.finish(st.state_hash(), stats.wall) {
            Ok(s) => println!(
                "  trace        : {p} ({} records, {} blocks, {} bytes)",
                s.records, s.blocks, s.bytes
            ),
            Err(e) => {
                eprintln!("cannot finalize trace file {p}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut report = RunReport::new(&format!("run_elf {path}"))
        .with_run(stats.wall, stats.retired, Some(stats.exit_code as u64))
        .with_profile(&profile)
        .with_phases(stats.phases);
    if let Some(hb) = &hot_blocks {
        report = report.with_sampler(hb);
    }

    if args.metrics.is_some() {
        // Calibration: time a bare observer-free run to establish raw
        // emulation speed, then one run per observer alone to attribute
        // the overhead observer by observer. All calibration runs are
        // deliberately watchdog- and fault-free.
        let _span = tel.enter("calibrate");
        let bare_run = |obs: &mut Vec<&mut dyn Observer>| {
            run(&program, obs, None, None, None).ok().map(|(_, s)| s.wall)
        };
        let bare = bare_run(&mut vec![]);
        if let Some(bare_wall) = bare.filter(|w| !w.is_zero()) {
            let pct_over = |wall: std::time::Duration| {
                ((wall.as_secs_f64() / bare_wall.as_secs_f64() - 1.0) * 100.0).max(0.0)
            };
            report.observer_overhead_pct = Some(pct_over(stats.wall));
            let solo: [(&str, &mut dyn Observer); 5] = [
                ("path_length", &mut PathLength::new(&program.regions)),
                ("critical_path", &mut DualCriticalPath::new(Tx2Latency)),
                ("windowed_cp", &mut WindowedCp::paper()),
                ("profile", &mut ProfilingObserver::new(&program.regions)),
                // The trace observer encodes into a sink: observer-side
                // cost only, no filesystem noise.
                ("trace_writer", &mut TraceWriter::sink(&trace_meta)),
            ];
            for (name, obs) in solo {
                if let Some(wall) = bare_run(&mut vec![obs]) {
                    report.observer_overheads.push((name.to_string(), pct_over(wall)));
                }
            }
        }
    }
    let report = report.finish_from(tel);
    if let Some(spans_path) = &args.spans_out {
        // Host spans and sampled guest time share one collapsed file: the
        // sampler frames live under their own `sampler;` root, so a
        // flamegraph renders both side by side.
        let mut collapsed = report.to_collapsed();
        if let Some(hb) = &hot_blocks {
            collapsed.push_str(&hb.to_collapsed());
        }
        std::fs::write(spans_path, collapsed).unwrap_or_else(|e| {
            eprintln!("cannot write {spans_path}: {e}");
            std::process::exit(1);
        });
        println!("  spans        : collapsed stacks written to {spans_path}");
    }
    if let Some(events_path) = &args.events {
        match tel.events().drain_to_file(std::path::Path::new(events_path)) {
            Ok(0) => println!("  events       : none emitted"),
            Ok(n) => println!("  events       : {n} written to {events_path}"),
            Err(e) => {
                eprintln!("cannot write {events_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(metrics_path) = &args.metrics {
        report.write_file(std::path::Path::new(metrics_path)).unwrap_or_else(|e| {
            eprintln!("cannot write {metrics_path}: {e}");
            std::process::exit(1);
        });
        println!("  metrics      : written to {metrics_path}");
    }
    println!("  run          : {}", report.summary());

    std::process::exit(stats.exit_code as i32);
}
