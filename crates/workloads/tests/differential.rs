//! Differential validation of the whole stack: every workload, compiled for
//! both ISAs under both compiler personalities, executed in the emulator,
//! must produce the reference interpreter's checksum bit-for-bit.

use isa_aarch64::AArch64Executor;
use isa_riscv::RiscVExecutor;
use kernelgen::{compile, interpret, Personality};
use simcore::{CpuState, EmulationCore, IsaKind};
use workloads::{SizeClass, Workload};

fn run_guest(w: Workload, isa: IsaKind, p: &Personality) -> (f64, u64) {
    let prog = w.build(SizeClass::Test);
    let c = compile(&prog, isa, p);
    let mut st = CpuState::new();
    c.program.load(&mut st).unwrap();
    let stats = match isa {
        IsaKind::RiscV => EmulationCore::new(RiscVExecutor::new())
            .run(&mut st, &mut [])
            .unwrap(),
        IsaKind::AArch64 => EmulationCore::new(AArch64Executor::new())
            .run(&mut st, &mut [])
            .unwrap(),
    };
    assert_eq!(stats.exit_code, 0);
    (st.mem.read_f64(c.checksum_addr).unwrap(), stats.retired)
}

#[test]
fn all_workloads_match_reference_on_both_isas() {
    for w in Workload::ALL {
        for personality in [Personality::gcc92(), Personality::gcc122()] {
            let expected = interpret(&w.build(SizeClass::Test), &personality).checksum;
            for isa in [IsaKind::RiscV, IsaKind::AArch64] {
                let (got, retired) = run_guest(w, isa, &personality);
                assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "{} on {} ({}): got {got}, expected {expected}",
                    w.name(),
                    isa,
                    personality.label()
                );
                assert!(retired > 0);
            }
        }
    }
}

#[test]
fn cross_isa_checksums_identical() {
    // Both ISAs implement IEEE 754 double arithmetic: bit-identical results.
    for w in Workload::ALL {
        let p = Personality::gcc122();
        let (rv, _) = run_guest(w, IsaKind::RiscV, &p);
        let (arm, _) = run_guest(w, IsaKind::AArch64, &p);
        assert_eq!(rv.to_bits(), arm.to_bits(), "{} cross-ISA mismatch", w.name());
    }
}

#[test]
fn path_lengths_within_paper_ballpark() {
    // The paper's headline: path lengths for the two ISAs are mostly within
    // ~20 % of each other. Check the ratio at test size for GCC 12.2.
    for w in Workload::ALL {
        let p = Personality::gcc122();
        let (_, rv) = run_guest(w, IsaKind::RiscV, &p);
        let (_, arm) = run_guest(w, IsaKind::AArch64, &p);
        let ratio = rv as f64 / arm as f64;
        assert!(
            (0.6..=1.7).contains(&ratio),
            "{}: RISC-V/AArch64 path-length ratio {ratio:.3} out of plausible range ({rv} vs {arm})",
            w.name()
        );
    }
}

#[test]
fn ablation_knobs_change_path_length_only() {
    // Toggling idiom knobs must never change results, only instruction
    // counts.
    let w = Workload::Stream;
    let base = Personality::gcc122();
    let mut post = base;
    post.arm_post_index = true;
    let mut noreg = base;
    noreg.arm_register_offset = false;
    let mut nofuse = base;
    nofuse.riscv_fused_compare_branch = false;

    let (ref_arm, base_arm) = run_guest(w, IsaKind::AArch64, &base);
    let (ref_rv, base_rv) = run_guest(w, IsaKind::RiscV, &base);
    for p in [post, noreg] {
        let (got, n) = run_guest(w, IsaKind::AArch64, &p);
        assert_eq!(got.to_bits(), ref_arm.to_bits());
        assert_ne!(n, base_arm, "arm knob should change the path length");
    }
    let (got, n) = run_guest(w, IsaKind::RiscV, &nofuse);
    assert_eq!(got.to_bits(), ref_rv.to_bits());
    assert!(n > base_rv, "unfused compare-branch must lengthen the path");
}
