//! Bring your own benchmark: write a kernel in the loop-kernel IR, compile
//! it for both ISAs under both compiler personalities, validate it against
//! the reference interpreter, and run the paper's analyses on it.
//!
//! The kernel here is a 1-D Jacobi smoother — a stencil, so it exercises
//! exactly the addressing-mode trade-offs the paper's §3.3 dissects.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use isacmp::{
    compile, execute, interpret, CriticalPath, IsaKind, PathLength, Personality, SizeClass,
};
use kernelgen::{Access, ArrayInit, Expr, Kernel, KernelProgram, Stmt};

fn jacobi(n: u64, sweeps: u64) -> KernelProgram {
    let mut p = KernelProgram::new("jacobi1d");
    let a = p.array("a", n + 2, ArrayInit::Linear { start: 0.0, step: 1.0 });
    let b = p.array("b", n + 2, ArrayInit::Zero);
    let at = |arr, offset| Access { arr, strides: vec![1], offset };
    // b[i] = (a[i-1] + a[i] + a[i+1]) / 3, then copy back.
    p.kernel(Kernel {
        name: "smooth".into(),
        dims: vec![n],
        accs: vec![],
        body: vec![Stmt::Store {
            access: at(b, 1),
            value: Expr::mul(
                Expr::add(
                    Expr::add(Expr::Load(at(a, 0)), Expr::Load(at(a, 1))),
                    Expr::Load(at(a, 2)),
                ),
                Expr::Const(1.0 / 3.0),
            ),
        }],
    });
    p.kernel(Kernel {
        name: "copy_back".into(),
        dims: vec![n],
        accs: vec![],
        body: vec![Stmt::Store { access: at(a, 1), value: Expr::Load(at(b, 1)) }],
    });
    p.repeat = sweeps;
    p.checksum_arrays = vec![a];
    p
}

fn main() {
    let prog = jacobi(4096, 8);
    let _ = SizeClass::Small; // sizes are explicit for custom kernels

    println!("1-D Jacobi smoother, N=4096, 8 sweeps\n");
    println!(
        "{:<10}{:<10}{:>14}{:>12}{:>8}   checksum",
        "compiler", "isa", "path length", "CP", "ILP"
    );
    for p in [Personality::gcc92(), Personality::gcc122()] {
        let expected = interpret(&prog, &p).checksum;
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let compiled = compile(&prog, isa, &p);
            let mut pl = PathLength::new(&compiled.program.regions);
            let mut cp = CriticalPath::new();
            let (st, _) = execute(&compiled, &mut [&mut pl, &mut cp]);
            let got = st.mem.read_f64(compiled.checksum_addr).unwrap();
            assert_eq!(got.to_bits(), expected.to_bits(), "guest must match interpreter");
            let r = cp.result();
            println!(
                "{:<10}{:<10}{:>14}{:>12}{:>8.0}   {:.6e}",
                p.label(),
                isacmp::isa_label(isa),
                pl.total(),
                r.critical_path,
                r.ilp(),
                got
            );
        }
    }
    println!("\nAll four binaries computed the identical checksum (bit-exact).");
}
