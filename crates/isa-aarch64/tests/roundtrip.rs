//! Property tests: encodable A64 instructions round-trip through the binary
//! encoding; the decoder never panics on arbitrary words.

use isa_aarch64::bitmask::{decode_bitmask, encode_bitmask};
use isa_aarch64::*;
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn reg30() -> impl Strategy<Value = u8> {
    0u8..31
}

fn cond() -> impl Strategy<Value = Cond> {
    (0u32..16).prop_map(Cond::from_bits)
}

fn fp_size() -> impl Strategy<Value = FpSize> {
    prop_oneof![Just(FpSize::S), Just(FpSize::D)]
}

fn mem_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::B),
        Just(MemSize::H),
        Just(MemSize::W),
        Just(MemSize::X),
        Just(MemSize::Sb),
        Just(MemSize::Sh),
        Just(MemSize::Sw)
    ]
}

fn index_mode() -> impl Strategy<Value = IndexMode> {
    prop_oneof![Just(IndexMode::Pre), Just(IndexMode::Post), Just(IndexMode::Unscaled)]
}

fn ldst_extend() -> impl Strategy<Value = Extend> {
    prop_oneof![
        Just(Extend::Uxtw),
        Just(Extend::Uxtx),
        Just(Extend::Sxtw),
        Just(Extend::Sxtx)
    ]
}

/// A valid bitmask immediate (generated from valid fields).
fn bitmask_imm(sf: bool) -> impl Strategy<Value = u64> {
    let max_n = if sf { 1u32 } else { 0 };
    (0..=max_n, 0u32..64, 0u32..64)
        .prop_filter_map("reserved bitmask", move |(n, immr, imms)| {
            decode_bitmask(sf, n, immr, imms)
        })
}

fn simm9() -> impl Strategy<Value = i16> {
    -256i16..256
}

fn b_offset() -> impl Strategy<Value = i64> {
    (-(1i64 << 25)..(1 << 25)).prop_map(|v| v * 4)
}

fn b19_offset() -> impl Strategy<Value = i64> {
    (-(1i64 << 18)..(1 << 18)).prop_map(|v| v * 4)
}

fn any_inst() -> impl Strategy<Value = Inst> {
    let shift = prop_oneof![Just(ShiftType::Lsl), Just(ShiftType::Lsr), Just(ShiftType::Asr)];
    let logic_shift = prop_oneof![
        Just(ShiftType::Lsl),
        Just(ShiftType::Lsr),
        Just(ShiftType::Asr),
        Just(ShiftType::Ror)
    ];
    let logic_op = prop_oneof![
        Just(LogicOp::And),
        Just(LogicOp::Bic),
        Just(LogicOp::Orr),
        Just(LogicOp::Orn),
        Just(LogicOp::Eor),
        Just(LogicOp::Eon),
        Just(LogicOp::Ands),
        Just(LogicOp::Bics)
    ];
    let logic_imm_op = prop_oneof![
        Just(LogicOp::And),
        Just(LogicOp::Orr),
        Just(LogicOp::Eor),
        Just(LogicOp::Ands)
    ];
    let mov_op = prop_oneof![Just(MovOp::Movn), Just(MovOp::Movz), Just(MovOp::Movk)];
    let csel_op = prop_oneof![
        Just(CselOp::Csel),
        Just(CselOp::Csinc),
        Just(CselOp::Csinv),
        Just(CselOp::Csneg)
    ];
    let fbin = prop_oneof![
        Just(FpBinOp::Fadd),
        Just(FpBinOp::Fsub),
        Just(FpBinOp::Fmul),
        Just(FpBinOp::Fdiv),
        Just(FpBinOp::Fmax),
        Just(FpBinOp::Fmin),
        Just(FpBinOp::Fmaxnm),
        Just(FpBinOp::Fminnm),
        Just(FpBinOp::Fnmul)
    ];
    let fun = prop_oneof![
        Just(FpUnOp::Fmov),
        Just(FpUnOp::Fabs),
        Just(FpUnOp::Fneg),
        Just(FpUnOp::Fsqrt)
    ];
    let ffma = prop_oneof![
        Just(FpFmaOp::Fmadd),
        Just(FpFmaOp::Fmsub),
        Just(FpFmaOp::Fnmadd),
        Just(FpFmaOp::Fnmsub)
    ];
    let shiftv = prop_oneof![
        Just(ShiftVOp::Lslv),
        Just(ShiftVOp::Lsrv),
        Just(ShiftVOp::Asrv),
        Just(ShiftVOp::Rorv)
    ];

    prop_oneof![
        (any::<bool>(), any::<bool>(), any::<bool>(), reg(), reg(), 0u16..4096, any::<bool>())
            .prop_map(|(sub, set_flags, sf, rd, rn, imm12, shift12)| Inst::AddSubImm {
                sub,
                set_flags,
                sf,
                rd,
                rn,
                imm12,
                shift12
            }),
        (any::<bool>(), any::<bool>(), any::<bool>(), reg(), reg(), reg(), shift)
            .prop_flat_map(|(sub, set_flags, sf, rd, rn, rm, shift)| {
                let max = if sf { 64u8 } else { 32 };
                (Just((sub, set_flags, sf, rd, rn, rm, shift)), 0..max)
            })
            .prop_map(|((sub, set_flags, sf, rd, rn, rm, shift), amount)| Inst::AddSubShifted {
                sub,
                set_flags,
                sf,
                rd,
                rn,
                rm,
                shift,
                amount
            }),
        (any::<bool>(), any::<bool>(), any::<bool>(), reg(), reg(), reg(), 0u32..8, 0u8..5)
            .prop_map(|(sub, set_flags, sf, rd, rn, rm, ext, amount)| Inst::AddSubExtended {
                sub,
                set_flags,
                sf,
                rd,
                rn,
                rm,
                extend: Extend::from_bits(ext),
                amount
            }),
        (logic_imm_op, any::<bool>(), reg(), reg()).prop_flat_map(|(op, sf, rd, rn)| {
            bitmask_imm(sf).prop_map(move |imm| Inst::LogicalImm { op, sf, rd, rn, imm })
        }),
        (logic_op, any::<bool>(), reg(), reg(), reg(), logic_shift)
            .prop_flat_map(|(op, sf, rd, rn, rm, shift)| {
                let max = if sf { 64u8 } else { 32 };
                (Just((op, sf, rd, rn, rm, shift)), 0..max)
            })
            .prop_map(|((op, sf, rd, rn, rm, shift), amount)| Inst::LogicalShifted {
                op,
                sf,
                rd,
                rn,
                rm,
                shift,
                amount
            }),
        (mov_op, any::<bool>(), reg(), any::<u16>()).prop_flat_map(|(op, sf, rd, imm16)| {
            let max_hw = if sf { 4u8 } else { 2 };
            (0..max_hw).prop_map(move |hw| Inst::MovWide { op, sf, rd, imm16, hw })
        }),
        (reg(), -(1i64 << 20)..(1 << 20)).prop_map(|(rd, offset)| Inst::Adr { rd, offset }),
        (reg(), -(1i64 << 20)..(1 << 20))
            .prop_map(|(rd, pages)| Inst::Adrp { rd, offset: pages << 12 }),
        (
            prop_oneof![Just(BitfieldOp::Sbfm), Just(BitfieldOp::Bfm), Just(BitfieldOp::Ubfm)],
            any::<bool>(),
            reg(),
            reg()
        )
            .prop_flat_map(|(op, sf, rd, rn)| {
                let max = if sf { 64u8 } else { 32 };
                (Just((op, sf, rd, rn)), 0..max, 0..max)
            })
            .prop_map(|((op, sf, rd, rn), immr, imms)| Inst::Bitfield {
                op,
                sf,
                rd,
                rn,
                immr,
                imms
            }),
        (any::<bool>(), reg(), reg(), reg())
            .prop_flat_map(|(sf, rd, rn, rm)| {
                let max = if sf { 64u8 } else { 32 };
                (Just((sf, rd, rn, rm)), 0..max)
            })
            .prop_map(|((sf, rd, rn, rm), lsb)| Inst::Extr { sf, rd, rn, rm, lsb }),
        (any::<bool>(), any::<bool>(), reg(), reg(), reg(), reg())
            .prop_map(|(sub, sf, rd, rn, rm, ra)| Inst::MulAdd { sub, sf, rd, rn, rm, ra }),
        (any::<bool>(), any::<bool>(), reg(), reg(), reg(), reg())
            .prop_map(|(sub, unsigned, rd, rn, rm, ra)| Inst::MulAddLong {
                sub,
                unsigned,
                rd,
                rn,
                rm,
                ra
            }),
        (any::<bool>(), reg(), reg(), reg())
            .prop_map(|(unsigned, rd, rn, rm)| Inst::MulHigh { unsigned, rd, rn, rm }),
        (any::<bool>(), any::<bool>(), reg(), reg(), reg())
            .prop_map(|(unsigned, sf, rd, rn, rm)| Inst::Div { unsigned, sf, rd, rn, rm }),
        (shiftv, any::<bool>(), reg(), reg(), reg())
            .prop_map(|(op, sf, rd, rn, rm)| Inst::ShiftV { op, sf, rd, rn, rm }),
        (
            prop_oneof![
                Just(Unary1Op::Rbit),
                Just(Unary1Op::Rev16),
                Just(Unary1Op::Rev),
                Just(Unary1Op::Clz),
                Just(Unary1Op::Cls)
            ],
            any::<bool>(),
            reg(),
            reg()
        )
            .prop_map(|(op, sf, rd, rn)| Inst::Unary1 { op, sf, rd, rn }),
        (csel_op, any::<bool>(), reg(), reg(), reg(), cond())
            .prop_map(|(op, sf, rd, rn, rm, cond)| Inst::CondSel { op, sf, rd, rn, rm, cond }),
        (any::<bool>(), any::<bool>(), reg(), reg(), 0u8..16, cond())
            .prop_map(|(negative, sf, rn, rm, nzcv, cond)| Inst::CondCmpReg {
                negative,
                sf,
                rn,
                rm,
                nzcv,
                cond
            }),
        (any::<bool>(), any::<bool>(), reg(), 0u8..32, 0u8..16, cond())
            .prop_map(|(negative, sf, rn, imm5, nzcv, cond)| Inst::CondCmpImm {
                negative,
                sf,
                rn,
                imm5,
                nzcv,
                cond
            }),
        (any::<bool>(), b_offset()).prop_map(|(link, offset)| Inst::B { link, offset }),
        (cond(), b19_offset()).prop_map(|(cond, offset)| Inst::BCond { cond, offset }),
        (any::<bool>(), any::<bool>(), reg(), b19_offset())
            .prop_map(|(nonzero, sf, rt, offset)| Inst::Cbz { nonzero, sf, rt, offset }),
        (any::<bool>(), reg(), 0u8..64, (-(1i64 << 13)..(1 << 13)).prop_map(|v| v * 4))
            .prop_map(|(nonzero, rt, bit, offset)| Inst::Tbz { nonzero, rt, bit, offset }),
        (any::<bool>(), reg30()).prop_map(|(link, rn)| Inst::BrReg { link, ret: false, rn }),
        reg30().prop_map(|rn| Inst::BrReg { link: false, ret: true, rn }),
        (mem_size(), reg(), reg(), 0u16..4096)
            .prop_map(|(size, rt, rn, imm12)| Inst::LdrImm { size, rt, rn, imm12 }),
        (
            prop_oneof![Just(MemSize::B), Just(MemSize::H), Just(MemSize::W), Just(MemSize::X)],
            reg(),
            reg(),
            0u16..4096
        )
            .prop_map(|(size, rt, rn, imm12)| Inst::StrImm { size, rt, rn, imm12 }),
        (mem_size(), index_mode(), reg(), reg(), simm9())
            .prop_map(|(size, mode, rt, rn, simm9)| Inst::LdrIdx { size, mode, rt, rn, simm9 }),
        (
            prop_oneof![Just(MemSize::B), Just(MemSize::H), Just(MemSize::W), Just(MemSize::X)],
            index_mode(),
            reg(),
            reg(),
            simm9()
        )
            .prop_map(|(size, mode, rt, rn, simm9)| Inst::StrIdx { size, mode, rt, rn, simm9 }),
        (mem_size(), reg(), reg(), reg(), ldst_extend(), any::<bool>())
            .prop_map(|(size, rt, rn, rm, extend, shift)| Inst::LdrReg {
                size,
                rt,
                rn,
                rm,
                extend,
                shift
            }),
        (
            prop_oneof![Just(MemSize::B), Just(MemSize::H), Just(MemSize::W), Just(MemSize::X)],
            reg(),
            reg(),
            reg(),
            ldst_extend(),
            any::<bool>()
        )
            .prop_map(|(size, rt, rn, rm, extend, shift)| Inst::StrReg {
                size,
                rt,
                rn,
                rm,
                extend,
                shift
            }),
        (
            any::<bool>(),
            prop_oneof![Just(None), Just(Some(IndexMode::Pre)), Just(Some(IndexMode::Post))],
            reg(),
            reg(),
            reg(),
            -64i16..64
        )
            .prop_map(|(sf, mode, rt, rt2, rn, imm7)| Inst::Ldp { sf, mode, rt, rt2, rn, imm7 }),
        (
            any::<bool>(),
            prop_oneof![Just(None), Just(Some(IndexMode::Pre)), Just(Some(IndexMode::Post))],
            reg(),
            reg(),
            reg(),
            -64i16..64
        )
            .prop_map(|(sf, mode, rt, rt2, rn, imm7)| Inst::Stp { sf, mode, rt, rt2, rn, imm7 }),
        (fp_size(), reg(), reg(), 0u16..4096)
            .prop_map(|(size, rt, rn, imm12)| Inst::LdrFpImm { size, rt, rn, imm12 }),
        (fp_size(), reg(), reg(), 0u16..4096)
            .prop_map(|(size, rt, rn, imm12)| Inst::StrFpImm { size, rt, rn, imm12 }),
        (fp_size(), index_mode(), reg(), reg(), simm9())
            .prop_map(|(size, mode, rt, rn, simm9)| Inst::LdrFpIdx { size, mode, rt, rn, simm9 }),
        (fp_size(), index_mode(), reg(), reg(), simm9())
            .prop_map(|(size, mode, rt, rn, simm9)| Inst::StrFpIdx { size, mode, rt, rn, simm9 }),
        (fp_size(), reg(), reg(), reg(), ldst_extend(), any::<bool>())
            .prop_map(|(size, rt, rn, rm, extend, shift)| Inst::LdrFpReg {
                size,
                rt,
                rn,
                rm,
                extend,
                shift
            }),
        (fp_size(), reg(), reg(), reg(), ldst_extend(), any::<bool>())
            .prop_map(|(size, rt, rn, rm, extend, shift)| Inst::StrFpReg {
                size,
                rt,
                rn,
                rm,
                extend,
                shift
            }),
        (fbin, fp_size(), reg(), reg(), reg())
            .prop_map(|(op, size, rd, rn, rm)| Inst::FpBin { op, size, rd, rn, rm }),
        (fun, fp_size(), reg(), reg()).prop_map(|(op, size, rd, rn)| Inst::FpUn { op, size, rd, rn }),
        (ffma, fp_size(), reg(), reg(), reg(), reg())
            .prop_map(|(op, size, rd, rn, rm, ra)| Inst::FpFma { op, size, rd, rn, rm, ra }),
        (fp_size(), reg(), reg()).prop_map(|(size, rn, rm)| Inst::Fcmp { size, rn, rm, zero: false }),
        (fp_size(), reg()).prop_map(|(size, rn)| Inst::Fcmp { size, rn, rm: 0, zero: true }),
        (fp_size(), reg(), reg(), reg(), cond())
            .prop_map(|(size, rd, rn, rm, cond)| Inst::Fcsel { size, rd, rn, rm, cond }),
        (any::<bool>(), reg(), reg()).prop_map(|(to_d, rd, rn)| Inst::FcvtPrec {
            to: if to_d { FpSize::D } else { FpSize::S },
            from: if to_d { FpSize::S } else { FpSize::D },
            rd,
            rn
        }),
        (any::<bool>(), any::<bool>(), fp_size(), reg(), reg())
            .prop_map(|(unsigned, sf, size, rd, rn)| Inst::IntToFp { unsigned, sf, size, rd, rn }),
        (any::<bool>(), any::<bool>(), fp_size(), reg(), reg())
            .prop_map(|(unsigned, sf, size, rd, rn)| Inst::FpToInt { unsigned, sf, size, rd, rn }),
        (any::<bool>(), fp_size(), reg(), reg()).prop_map(|(to_fp, size, rd, rn)| {
            Inst::FmovIntFp { to_fp, sf: size == FpSize::D, size, rd, rn }
        }),
        (fp_size(), reg(), any::<u8>()).prop_map(|(size, rd, imm8)| Inst::FmovImm {
            size,
            rd,
            imm8
        }),
        Just(Inst::Nop),
        any::<u16>().prop_map(|imm16| Inst::Svc { imm16 }),
        any::<u16>().prop_map(|imm16| Inst::Brk { imm16 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn encode_decode_round_trip(inst in any_inst()) {
        let word = encode(&inst);
        let back = decode(word).map_err(|e| {
            TestCaseError::fail(format!("decode of {inst:?} (word {word:#010x}) failed: {e}"))
        })?;
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decoder_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn disassembler_never_panics(inst in any_inst()) {
        prop_assert!(!disassemble(&inst).is_empty());
    }

    #[test]
    fn bitmask_round_trip(n in 0u32..2, immr in 0u32..64, imms in 0u32..64) {
        if let Some(mask) = decode_bitmask(true, n, immr, imms) {
            let (n2, r2, s2) = encode_bitmask(true, mask).expect("re-encodable");
            prop_assert_eq!(decode_bitmask(true, n2, r2, s2).unwrap(), mask);
        }
    }
}
