//! Differential test for the macro-op fusion pass: a fusion report computed
//! during live emulation and one computed by replaying the captured trace
//! must be byte-identical — the pass sees only `RetiredInst` fields, which
//! is exactly what the trace format carries. Also pins the cache-separation
//! contract: fused and unfused cells share trace files (traces are
//! fusion-independent) but never share results.

use isacmp::{
    run_cell_opts, run_matrix_opts, CellOptions, IsaKind, MatrixOptions, Personality, SizeClass,
    Workload,
};

fn fused_opts(dir: &std::path::Path) -> MatrixOptions {
    MatrixOptions { trace_dir: Some(dir.to_path_buf()), fusion: true, ..Default::default() }
}

#[test]
fn replayed_fusion_reports_match_live_byte_identically() {
    let dir = std::env::temp_dir().join(format!("isacmp-fusion-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tel = isacmp::telemetry::global();

    let captures_before = tel.counter("trace_captures");
    let live = run_matrix_opts(&Workload::ALL, SizeClass::Test, &fused_opts(&dir));
    assert!(live.is_complete(), "live fused matrix must be clean:\n{}", live.failure_summary());
    assert_eq!(tel.counter("trace_captures") - captures_before, 20);
    assert!(live.has_fused(), "fusion: true must populate every cell's fused block");

    let replays_before = tel.counter("trace_replays");
    let replayed = run_matrix_opts(&Workload::ALL, SizeClass::Test, &fused_opts(&dir));
    assert!(replayed.is_complete(), "replay must be clean:\n{}", replayed.failure_summary());
    assert_eq!(tel.counter("trace_replays") - replays_before, 20);

    // The fused artifacts, byte for byte: the comparison table, the per-pair
    // CSV, and fig1 with its effective-path columns.
    assert_eq!(live.fusion_table(), replayed.fusion_table());
    assert_eq!(live.fusion_csv(), replayed.fusion_csv());
    assert_eq!(live.fig1_csv(), replayed.fig1_csv());
    // And the full per-cell reports, through the JSON round-trip the daemon
    // and the journal both use.
    assert_eq!(live.to_json(), replayed.to_json());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fused_and_unfused_cells_share_traces_but_not_results() {
    let dir = std::env::temp_dir().join(format!("isacmp-fusion-axis-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tel = isacmp::telemetry::global();

    let cell = |fusion: bool| {
        let opts = CellOptions { trace_dir: Some(dir.clone()), fusion, ..Default::default() };
        run_cell_opts(Workload::Stream, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Test, &opts)
            .expect("cell must run")
    };

    // Unfused capture first; the fused run must *replay* the same trace —
    // the fusion axis changes results, never the captured stream.
    let unfused = cell(false);
    let replays_before = tel.counter("trace_replays");
    let fused = cell(true);
    assert_eq!(
        tel.counter("trace_replays") - replays_before,
        1,
        "a fused run must reuse the unfused run's trace"
    );

    assert!(unfused.fused.is_none(), "fusion off must leave the cell's fused block empty");
    let report = fused.fused.as_ref().expect("fusion on must attach a report");
    assert_eq!(report.effective_path_length, fused.path_length - report.fused_pairs);
    assert!(
        report.fused_critical_path <= fused.critical_path,
        "fusing can only shorten the critical path"
    );

    // Every non-fused measurement must agree between the two cells: the
    // fusion observer rides alongside the baseline analyses, never in front
    // of them.
    let mut defused = fused.clone();
    defused.fused = None;
    assert_eq!(unfused, defused, "fusion must not perturb the baseline measurements");

    std::fs::remove_dir_all(&dir).ok();
}
