//! Run a statically linked ELF produced by `make_tables elves` (or any
//! simple static ELF in the supported subset) through the emulation core
//! and print the paper's metrics — the equivalent of the artifact's
//! "run all relevant (pre-compiled) binaries" step.
//!
//! ```sh
//! cargo run --release -p bench --bin make_tables -- elves --size small
//! cargo run --release -p bench --bin run_elf -- results/bin/stream-gcc-12.2-riscv64.elf
//! ```

use isacmp::{
    AArch64Executor, CpuState, DualCriticalPath, EmulationCore, IsaKind, Observer, PathLength,
    Program, RiscVExecutor, Tx2Latency, WindowedCp,
};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: run_elf <binary.elf>");
            std::process::exit(2);
        }
    };
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let program = Program::from_elf(&bytes).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let mut st = CpuState::new();
    program.load(&mut st).expect("load");
    let mut pl = PathLength::new(&program.regions);
    let mut cp = DualCriticalPath::new(Tx2Latency);
    let mut wcp = WindowedCp::paper();
    let mut obs: Vec<&mut dyn Observer> = vec![&mut pl, &mut cp, &mut wcp];

    let stats = match program.isa {
        IsaKind::RiscV => EmulationCore::new(RiscVExecutor::new()).run(&mut st, &mut obs),
        IsaKind::AArch64 => EmulationCore::new(AArch64Executor::new()).run(&mut st, &mut obs),
    }
    .unwrap_or_else(|e| {
        eprintln!("guest fault: {e} (pc={:#x})", st.pc);
        std::process::exit(1);
    });

    println!("{path}");
    println!("  isa          : {}", program.isa);
    println!("  exit code    : {}", stats.exit_code);
    println!("  path length  : {}", pl.total());
    let r = cp.unit();
    println!("  critical path: {}  (ILP {:.0}, 2GHz runtime {:.4} ms)", r.critical_path, r.ilp(), r.runtime_ms());
    let s = cp.scaled();
    println!("  scaled CP    : {}  (ILP {:.0}, 2GHz runtime {:.4} ms)", s.critical_path, s.ilp(), s.runtime_ms());
    println!("  per kernel   :");
    for (name, count) in pl.by_kernel() {
        println!("    {name:<14} {count}");
    }
    println!("  windowed ILP :");
    for w in wcp.stats() {
        println!("    window {:<6} mean CP {:>10.2}  mean ILP {:>8.2}", w.size, w.mean_cp(), w.mean_ilp());
    }
    if !st.output.is_empty() {
        println!("  guest output : {:?}", st.output_string());
    }
}
