//! Minimal ELF64 emission and loading for program images.
//!
//! The paper's artifact ships statically linked ELF binaries that SimEng
//! loads; this module gives [`Program`] the same interchange format: a
//! little-endian `ET_EXEC` ELF64 with one `PT_LOAD` segment per section,
//! the correct `e_machine` for the target ISA, and a vendor note segment
//! (`isacmp.regions`) carrying the kernel-region table so per-kernel
//! attribution survives the round trip. Files are accepted by standard
//! binutils (`readelf`, `objdump`).

use crate::error::SimError;
use crate::program::{IsaKind, Program, Region, Section};

const EI_NIDENT: usize = 16;
const ET_EXEC: u16 = 2;
const EM_AARCH64: u16 = 183;
const EM_RISCV: u16 = 243;
const PT_LOAD: u32 = 1;
const PT_NOTE: u32 = 4;
const EHDR_SIZE: usize = 64;
const PHDR_SIZE: usize = 56;

/// Note name identifying the region table.
const NOTE_NAME: &[u8] = b"isacmp\0\0";
/// Note type for the region table.
const NOTE_TYPE_REGIONS: u32 = 0x5247_4e53; // "RGNS"

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(b[off..off + 2].try_into().unwrap())
}
fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}
fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

/// Serialise the region table into note descriptor bytes.
fn regions_to_desc(regions: &[Region]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, regions.len() as u32);
    for r in regions {
        put_u64(&mut out, r.start);
        put_u64(&mut out, r.end);
        let name = r.name.as_bytes();
        put_u32(&mut out, name.len() as u32);
        out.extend_from_slice(name);
    }
    out
}

fn regions_from_desc(desc: &[u8]) -> Result<Vec<Region>, SimError> {
    let err = || SimError::Fault { pc: 0, msg: "malformed region note".into() };
    if desc.len() < 4 {
        return Err(err());
    }
    let n = get_u32(desc, 0) as usize;
    let mut off = 4;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if off + 20 > desc.len() {
            return Err(err());
        }
        let start = get_u64(desc, off);
        let end = get_u64(desc, off + 8);
        let len = get_u32(desc, off + 16) as usize;
        off += 20;
        if off + len > desc.len() {
            return Err(err());
        }
        let name = String::from_utf8_lossy(&desc[off..off + len]).into_owned();
        off += len;
        out.push(Region { name, start, end });
    }
    Ok(out)
}

impl Program {
    /// Serialise as a statically linked ELF64 executable.
    pub fn to_elf(&self) -> Vec<u8> {
        let machine = match self.isa {
            IsaKind::AArch64 => EM_AARCH64,
            IsaKind::RiscV => EM_RISCV,
        };
        // Note segment payload.
        let desc = regions_to_desc(&self.regions);
        let mut note = Vec::new();
        put_u32(&mut note, NOTE_NAME.len() as u32);
        put_u32(&mut note, desc.len() as u32);
        put_u32(&mut note, NOTE_TYPE_REGIONS);
        note.extend_from_slice(NOTE_NAME);
        note.extend_from_slice(&desc);
        while note.len() % 4 != 0 {
            note.push(0);
        }

        let phnum = self.sections.len() + 1;
        let mut file_off = EHDR_SIZE + phnum * PHDR_SIZE;
        // Align each segment's file offset to 8 (congruent layout is not
        // required by loaders we care about, but keeps things tidy).
        let mut layouts = Vec::new(); // (file_off, len) per section
        for s in &self.sections {
            file_off = (file_off + 7) & !7;
            layouts.push((file_off, s.bytes.len()));
            file_off += s.bytes.len();
        }
        file_off = (file_off + 3) & !3;
        let note_off = file_off;

        let mut out = Vec::new();
        // ELF header.
        let ident: [u8; EI_NIDENT] = [
            0x7F, b'E', b'L', b'F', 2 /* 64-bit */, 1 /* little */, 1 /* version */, 0,
            0, 0, 0, 0, 0, 0, 0, 0,
        ];
        out.extend_from_slice(&ident);
        put_u16(&mut out, ET_EXEC);
        put_u16(&mut out, machine);
        put_u32(&mut out, 1); // e_version
        put_u64(&mut out, self.entry);
        put_u64(&mut out, EHDR_SIZE as u64); // e_phoff
        put_u64(&mut out, 0); // e_shoff: no section headers
        put_u32(&mut out, 0); // e_flags
        put_u16(&mut out, EHDR_SIZE as u16);
        put_u16(&mut out, PHDR_SIZE as u16);
        put_u16(&mut out, phnum as u16);
        put_u16(&mut out, 0); // e_shentsize
        put_u16(&mut out, 0); // e_shnum
        put_u16(&mut out, 0); // e_shstrndx

        // Program headers.
        for (s, (off, len)) in self.sections.iter().zip(layouts.iter()) {
            let exec = s.name.contains("text");
            put_u32(&mut out, PT_LOAD);
            put_u32(&mut out, if exec { 0b101 } else { 0b110 }); // R+X / R+W
            put_u64(&mut out, *off as u64);
            put_u64(&mut out, s.addr); // p_vaddr
            put_u64(&mut out, s.addr); // p_paddr
            put_u64(&mut out, *len as u64); // p_filesz
            put_u64(&mut out, *len as u64); // p_memsz
            put_u64(&mut out, 8); // p_align
        }
        put_u32(&mut out, PT_NOTE);
        put_u32(&mut out, 0b100);
        put_u64(&mut out, note_off as u64);
        put_u64(&mut out, 0);
        put_u64(&mut out, 0);
        put_u64(&mut out, note.len() as u64);
        put_u64(&mut out, note.len() as u64);
        put_u64(&mut out, 4);

        // Segment payloads.
        for (s, (off, _)) in self.sections.iter().zip(layouts.iter()) {
            while out.len() < *off {
                out.push(0);
            }
            out.extend_from_slice(&s.bytes);
        }
        while out.len() < note_off {
            out.push(0);
        }
        out.extend_from_slice(&note);
        out
    }

    /// Parse a statically linked ELF64 executable produced by [`Program::to_elf`]
    /// (or any simple static ELF with `PT_LOAD` segments).
    pub fn from_elf(bytes: &[u8]) -> Result<Program, SimError> {
        let err = |msg: &str| SimError::Fault { pc: 0, msg: msg.into() };
        if bytes.len() < EHDR_SIZE || &bytes[0..4] != b"\x7FELF" {
            return Err(err("not an ELF file"));
        }
        if bytes[4] != 2 || bytes[5] != 1 {
            return Err(err("only little-endian ELF64 is supported"));
        }
        let machine = get_u16(bytes, 18);
        let isa = match machine {
            EM_AARCH64 => IsaKind::AArch64,
            EM_RISCV => IsaKind::RiscV,
            m => {
                return Err(err(&format!("unsupported e_machine {m}")));
            }
        };
        let entry = get_u64(bytes, 24);
        let phoff = get_u64(bytes, 32) as usize;
        let phentsize = get_u16(bytes, 54) as usize;
        let phnum = get_u16(bytes, 56) as usize;
        if phentsize < PHDR_SIZE || phoff + phnum * phentsize > bytes.len() {
            return Err(err("bad program header table"));
        }

        let mut program = Program::new(isa);
        program.entry = entry;
        for i in 0..phnum {
            let ph = phoff + i * phentsize;
            let p_type = get_u32(bytes, ph);
            let p_offset = get_u64(bytes, ph + 8) as usize;
            let p_vaddr = get_u64(bytes, ph + 16);
            let p_filesz = get_u64(bytes, ph + 32) as usize;
            // checked_add: a crafted file with p_offset near usize::MAX must
            // not wrap past the bounds check into a slice panic.
            let end = p_offset
                .checked_add(p_filesz)
                .ok_or_else(|| err("segment offset overflow"))?;
            if end > bytes.len() {
                return Err(err("segment exceeds file"));
            }
            match p_type {
                PT_LOAD => {
                    let flags = get_u32(bytes, ph + 4);
                    program.sections.push(Section {
                        addr: p_vaddr,
                        bytes: bytes[p_offset..p_offset + p_filesz].to_vec(),
                        name: if flags & 1 != 0 { ".text".into() } else { ".data".into() },
                    });
                }
                PT_NOTE => {
                    let note = &bytes[p_offset..p_offset + p_filesz];
                    if note.len() >= 12 {
                        let namesz = get_u32(note, 0) as usize;
                        let descsz = get_u32(note, 4) as usize;
                        let ntype = get_u32(note, 8);
                        let name_end = 12 + namesz;
                        if ntype == NOTE_TYPE_REGIONS
                            && note.len() >= name_end + descsz
                            && &note[12..name_end] == NOTE_NAME
                        {
                            program.regions = regions_from_desc(&note[name_end..name_end + descsz])?;
                        }
                    }
                }
                _ => {}
            }
        }
        if program.sections.is_empty() {
            return Err(err("no loadable segments"));
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new(IsaKind::RiscV);
        p.entry = 0x1_0000;
        p.sections.push(Section {
            addr: 0x1_0000,
            bytes: vec![0x13, 0, 0, 0, 0x73, 0, 0, 0],
            name: ".text".into(),
        });
        p.sections.push(Section {
            addr: 0x20_0000,
            bytes: (0..32u8).collect(),
            name: ".data".into(),
        });
        p.regions.push(Region { name: "copy".into(), start: 0x1_0000, end: 0x1_0004 });
        p.regions.push(Region { name: "scale".into(), start: 0x1_0004, end: 0x1_0008 });
        p
    }

    #[test]
    fn elf_round_trip() {
        let p = sample();
        let elf = p.to_elf();
        let back = Program::from_elf(&elf).unwrap();
        assert_eq!(back.isa, IsaKind::RiscV);
        assert_eq!(back.entry, p.entry);
        assert_eq!(back.sections.len(), 2);
        assert_eq!(back.sections[0].bytes, p.sections[0].bytes);
        assert_eq!(back.sections[1].addr, 0x20_0000);
        assert_eq!(back.regions, p.regions);
    }

    #[test]
    fn elf_magic_and_machine() {
        let elf = sample().to_elf();
        assert_eq!(&elf[0..4], b"\x7FELF");
        assert_eq!(elf[4], 2, "ELFCLASS64");
        assert_eq!(get_u16(&elf, 18), EM_RISCV);
        let mut arm = sample();
        arm.isa = IsaKind::AArch64;
        assert_eq!(get_u16(&arm.to_elf(), 18), EM_AARCH64);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Program::from_elf(b"not an elf").is_err());
        assert!(Program::from_elf(&[0x7F, b'E', b'L', b'F']).is_err());
        // 32-bit class rejected.
        let mut elf = sample().to_elf();
        elf[4] = 1;
        assert!(Program::from_elf(&elf).is_err());
    }

    #[test]
    fn loaded_elf_executes() {
        use crate::state::CpuState;
        let p = sample();
        let back = Program::from_elf(&p.to_elf()).unwrap();
        let mut st = CpuState::new();
        back.load(&mut st).unwrap();
        assert_eq!(st.pc, 0x1_0000);
        assert_eq!(st.mem.read_u32(0x1_0000).unwrap(), 0x13);
        assert_eq!(st.mem.read_u8(0x20_0000 + 5).unwrap(), 5);
    }
}
