//! Architectural CPU state shared by both ISA back-ends.

use crate::error::SimError;
use crate::mem::Memory;

/// Linux generic-ABI syscall numbers (identical on riscv64 and aarch64).
pub mod sysno {
    /// `write(fd, buf, len)`.
    pub const WRITE: u64 = 64;
    /// `exit(code)`.
    pub const EXIT: u64 = 93;
    /// `exit_group(code)`.
    pub const EXIT_GROUP: u64 = 94;
    /// `brk(addr)`.
    pub const BRK: u64 = 214;
}

/// Architectural state: register files, PC, flags, memory, and the minimal
/// process environment (program break, captured output, exit status).
///
/// Both ISAs index the same 32-entry integer and FP files. For AArch64,
/// `x[31]` holds the stack pointer; the back-end substitutes zero when an
/// encoding designates register 31 as `xzr`. FP registers hold raw bit
/// patterns (`f64::to_bits`), which also represent `f32` values NaN-boxed /
/// zero-extended as each ISA requires.
pub struct CpuState {
    /// Program counter.
    pub pc: u64,
    /// Integer register file.
    pub x: [u64; 32],
    /// Floating-point register file (raw bits).
    pub f: [u64; 32],
    /// AArch64 NZCV flags packed as bits 3..0 = N,Z,C,V.
    pub nzcv: u8,
    /// Guest memory.
    pub mem: Memory,
    /// Retired instruction count.
    pub instret: u64,
    /// Exit status once the guest has called `exit`/`exit_group`.
    pub exited: Option<i64>,
    /// Bytes the guest wrote to stdout/stderr via the `write` syscall.
    pub output: Vec<u8>,
    /// Current program break for the `brk` syscall.
    pub brk: u64,
}

impl CpuState {
    /// Fresh state with zeroed registers and empty memory.
    pub fn new() -> Self {
        CpuState {
            pc: 0,
            x: [0; 32],
            f: [0; 32],
            nzcv: 0,
            mem: Memory::new(),
            instret: 0,
            exited: None,
            output: Vec::new(),
            brk: 0x4000_0000,
        }
    }

    /// Read FP register `n` as an `f64`.
    #[inline]
    pub fn fd(&self, n: u8) -> f64 {
        f64::from_bits(self.f[n as usize])
    }

    /// Write FP register `n` from an `f64`.
    #[inline]
    pub fn set_fd(&mut self, n: u8, v: f64) {
        self.f[n as usize] = v.to_bits();
    }

    /// Handle a guest syscall using the Linux generic ABI: `num` in the
    /// syscall-number register (`a7` / `x8`), arguments in `a0..` / `x0..`.
    ///
    /// Returns the value to place in the return register (`a0` / `x0`).
    pub fn syscall(&mut self, pc: u64, num: u64, args: [u64; 3]) -> Result<u64, SimError> {
        match num {
            sysno::EXIT | sysno::EXIT_GROUP => {
                self.exited = Some(args[0] as i64);
                Ok(0)
            }
            sysno::WRITE => {
                let [_fd, buf, len] = args;
                // Cap the transfer so a corrupt guest length register cannot
                // drive a host-side allocation of arbitrary size; the read
                // itself still faults on unmapped memory.
                const MAX_WRITE: u64 = 16 * 1024 * 1024;
                if len > MAX_WRITE {
                    return Err(SimError::Fault {
                        pc,
                        msg: format!("write of {len} bytes exceeds the {MAX_WRITE}-byte cap"),
                    });
                }
                let mut bytes = vec![0u8; len as usize];
                self.mem.read_bytes(buf, &mut bytes)?;
                self.output.extend_from_slice(&bytes);
                Ok(len)
            }
            sysno::BRK => {
                if args[0] != 0 {
                    self.brk = args[0];
                }
                Ok(self.brk)
            }
            _ => Err(SimError::UnimplementedSyscall { pc, num }),
        }
    }

    /// Guest stdout/stderr interpreted as UTF-8 (lossily).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// A 64-bit fingerprint of the architectural state: PC, both register
    /// files, flags, retirement count, exit status, and captured output.
    ///
    /// Two runs of the same binary that end in the same architectural state
    /// hash equal; any divergence (different register contents, different
    /// path length, different guest output) changes the hash with
    /// overwhelming probability. Trace files record this as provenance so a
    /// replayed trace can be tied back to the exact run that produced it.
    /// Memory contents are deliberately excluded — hashing a multi-megabyte
    /// guest heap per run would dwarf the cost of the fields that actually
    /// distinguish runs, and every workload already folds its memory results
    /// into a register-visible checksum.
    pub fn state_hash(&self) -> u64 {
        // FNV-1a over the field bytes, then a splitmix64 finalizer for
        // avalanche on the low bits.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01B3);
            }
        };
        eat(&self.pc.to_le_bytes());
        for r in &self.x {
            eat(&r.to_le_bytes());
        }
        for r in &self.f {
            eat(&r.to_le_bytes());
        }
        eat(&[self.nzcv]);
        eat(&self.instret.to_le_bytes());
        eat(&self.exited.unwrap_or(-1).to_le_bytes());
        eat(&self.output);
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for CpuState {
    fn default() -> Self {
        CpuState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_syscall_sets_status() {
        let mut s = CpuState::new();
        s.syscall(0, sysno::EXIT, [42, 0, 0]).unwrap();
        assert_eq!(s.exited, Some(42));
    }

    #[test]
    fn write_syscall_captures_output() {
        let mut s = CpuState::new();
        s.mem.write_bytes(0x1000, b"hello").unwrap();
        let n = s.syscall(0, sysno::WRITE, [1, 0x1000, 5]).unwrap();
        assert_eq!(n, 5);
        assert_eq!(s.output_string(), "hello");
    }

    #[test]
    fn brk_tracks_break() {
        let mut s = CpuState::new();
        let cur = s.syscall(0, sysno::BRK, [0, 0, 0]).unwrap();
        assert_eq!(cur, 0x4000_0000);
        let next = s.syscall(0, sysno::BRK, [0x4001_0000, 0, 0]).unwrap();
        assert_eq!(next, 0x4001_0000);
    }

    #[test]
    fn unknown_syscall_errors() {
        let mut s = CpuState::new();
        assert!(matches!(
            s.syscall(0x10, 9999, [0, 0, 0]),
            Err(SimError::UnimplementedSyscall { pc: 0x10, num: 9999 })
        ));
    }

    #[test]
    fn state_hash_distinguishes_states() {
        let a = CpuState::new();
        let mut b = CpuState::new();
        assert_eq!(a.state_hash(), b.state_hash(), "identical states hash equal");
        b.x[5] = 1;
        assert_ne!(a.state_hash(), b.state_hash(), "register change alters the hash");
        let mut c = CpuState::new();
        c.instret = 10;
        assert_ne!(a.state_hash(), c.state_hash(), "instret change alters the hash");
    }

    #[test]
    fn fp_views() {
        let mut s = CpuState::new();
        s.set_fd(3, 2.5);
        assert_eq!(s.fd(3), 2.5);
        assert_eq!(s.f[3], 2.5f64.to_bits());
    }
}
