//! Shared CLI flag parsing for every bench and server binary.
//!
//! `run_elf`, `make_tables` and `bench_report` grew three private copies
//! of the same flag grammar (`--size`, `--engine`, `--deadline-secs`,
//! `--inject`, `--campaign`, `--retries`, `--trace-dir`); the `isacmpd`
//! daemon and `load_driver` would have been the fourth and fifth. This
//! module is the single source of truth: the value grammars live here
//! once, and [`MatrixFlags`] bundles the matrix-shaped subset so a job
//! spec built by `load_driver` and a matrix run configured by
//! `make_tables` cannot drift apart.
//!
//! Every parser returns `Result<_, String>` with an actionable message;
//! the bins decide whether that is an `exit(2)` (CLI) or a typed `Error`
//! frame (daemon).

use std::path::PathBuf;
use std::time::Duration;

use isacmp::{CampaignSpec, Engine, InjectSpec, SizeClass};

/// The value following `flag`, when present (`--flag value` style).
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Is the bare flag present?
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parse a size-class name (`test`, `small`, `paper`).
pub fn size_from_name(name: &str) -> Result<SizeClass, String> {
    match name {
        "test" => Ok(SizeClass::Test),
        "small" => Ok(SizeClass::Small),
        "paper" => Ok(SizeClass::Paper),
        other => Err(format!("unknown size {other:?}; one of: test, small, paper")),
    }
}

/// Parse `--size` (default [`SizeClass::Small`], matching every bin's
/// historical default).
pub fn parse_size(args: &[String]) -> Result<SizeClass, String> {
    match flag_value(args, "--size") {
        Some(name) => size_from_name(&name),
        None => Ok(SizeClass::Small),
    }
}

/// Parse a `--deadline-secs` value (fractional seconds).
pub fn deadline_from_secs(s: &str) -> Result<Duration, String> {
    s.parse::<f64>()
        .ok()
        .filter(|secs| secs.is_finite() && *secs >= 0.0)
        .map(Duration::from_secs_f64)
        .ok_or_else(|| format!("bad --deadline-secs value {s:?}: expected seconds"))
}

/// Parse `--deadline-secs`, if given.
pub fn parse_deadline(args: &[String]) -> Result<Option<Duration>, String> {
    flag_value(args, "--deadline-secs").map(|s| deadline_from_secs(&s)).transpose()
}

/// Parse `--retries` (defaulting to `default` — one retry for matrix
/// runs: transient upsets get a second chance, deterministic failures
/// never retry).
pub fn parse_retries(args: &[String], default: u32) -> Result<u32, String> {
    match flag_value(args, "--retries") {
        Some(s) => s
            .parse()
            .map_err(|_| format!("bad --retries value {s:?}: expected a small integer")),
        None => Ok(default),
    }
}

/// Parse `--engine` (default [`Engine::Block`], the pre-decoded
/// basic-block engine).
pub fn parse_engine(args: &[String]) -> Result<Engine, String> {
    match flag_value(args, "--engine") {
        Some(s) => s.parse().map_err(|e| format!("bad --engine value: {e}")),
        None => Ok(Engine::default()),
    }
}

/// Parse `--inject workload/compiler/isa:fault` (matrix-style targeted
/// injection), if given.
pub fn parse_inject(args: &[String]) -> Result<Option<InjectSpec>, String> {
    flag_value(args, "--inject").map(|s| InjectSpec::parse(&s)).transpose()
}

/// Parse `--campaign <seed>:<n-faults>` into its spec (sampling the
/// schedule — and writing the manifest — stays with the caller), if given.
pub fn parse_campaign_spec(args: &[String]) -> Result<Option<CampaignSpec>, String> {
    flag_value(args, "--campaign").map(|s| CampaignSpec::parse(&s)).transpose()
}

/// Parse `--trace-dir`, if given. Directory creation stays with the
/// caller (the daemon creates it once at startup, the CLIs per run).
pub fn parse_trace_dir(args: &[String]) -> Option<PathBuf> {
    flag_value(args, "--trace-dir").map(PathBuf::from)
}

/// Forward `--progress[=N]` to the emulation core's environment knob.
pub fn apply_progress_env(args: &[String]) {
    for a in args {
        if a == "--progress" {
            std::env::set_var("ISACMP_PROGRESS", "1");
        } else if let Some(n) = a.strip_prefix("--progress=") {
            std::env::set_var("ISACMP_PROGRESS", n);
        }
    }
}

/// The matrix-shaped flag set shared by `make_tables`, the `isacmpd` job
/// spec, and `load_driver`: one parse, one meaning, everywhere.
#[derive(Debug, Clone)]
pub struct MatrixFlags {
    /// Problem size class (`--size`, default small).
    pub size: SizeClass,
    /// Per-cell wall-clock watchdog (`--deadline-secs`).
    pub deadline: Option<Duration>,
    /// Per-cell retries for retryable failures (`--retries`, default 1).
    pub retries: u32,
    /// Targeted deterministic fault injection (`--inject`).
    pub inject: Option<InjectSpec>,
    /// Seeded multi-fault campaign spec (`--campaign <seed>:<n>`).
    pub campaign: Option<CampaignSpec>,
    /// Trace capture/replay cache directory (`--trace-dir`).
    pub trace_dir: Option<PathBuf>,
    /// Retire loop engine (`--engine`, default block).
    pub engine: Engine,
    /// Arm the macro-op fusion pass (`--fusion`): every cell additionally
    /// reports fused pair counts and effective path length.
    pub fusion: bool,
}

impl MatrixFlags {
    /// Parse the matrix flag subset out of `args`.
    pub fn parse(args: &[String]) -> Result<MatrixFlags, String> {
        Ok(MatrixFlags {
            size: parse_size(args)?,
            deadline: parse_deadline(args)?,
            retries: parse_retries(args, 1)?,
            inject: parse_inject(args)?,
            campaign: parse_campaign_spec(args)?,
            trace_dir: parse_trace_dir(args),
            engine: parse_engine(args)?,
            fusion: has_flag(args, "--fusion"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sizes_parse_with_default() {
        assert_eq!(parse_size(&args(&[])).unwrap(), SizeClass::Small);
        assert_eq!(parse_size(&args(&["--size", "test"])).unwrap(), SizeClass::Test);
        assert_eq!(parse_size(&args(&["--size", "paper"])).unwrap(), SizeClass::Paper);
        assert!(parse_size(&args(&["--size", "huge"])).is_err());
    }

    #[test]
    fn matrix_flags_round_up_the_shared_grammar() {
        let f = MatrixFlags::parse(&args(&[
            "--size",
            "test",
            "--deadline-secs",
            "2.5",
            "--retries",
            "2",
            "--inject",
            "STREAM/gcc-12.2/RISC-V:trap@1000",
            "--campaign",
            "7:3",
            "--trace-dir",
            "results/traces",
            "--engine",
            "legacy",
            "--fusion",
        ]))
        .unwrap();
        assert_eq!(f.size, SizeClass::Test);
        assert_eq!(f.deadline, Some(Duration::from_millis(2500)));
        assert_eq!(f.retries, 2);
        assert!(f.inject.is_some());
        let c = f.campaign.unwrap();
        assert_eq!((c.seed, c.n_faults), (7, 3));
        assert_eq!(f.trace_dir.as_deref(), Some(std::path::Path::new("results/traces")));
        assert_eq!(f.engine, Engine::Legacy);
        assert!(f.fusion);
    }

    #[test]
    fn defaults_match_make_tables_historical_behaviour() {
        let f = MatrixFlags::parse(&args(&[])).unwrap();
        assert_eq!(f.size, SizeClass::Small);
        assert_eq!(f.retries, 1);
        assert_eq!(f.engine, Engine::Block);
        assert!(f.deadline.is_none() && f.inject.is_none() && f.campaign.is_none());
        assert!(!f.fusion);
    }

    #[test]
    fn bad_values_are_actionable_errors() {
        assert!(parse_deadline(&args(&["--deadline-secs", "fast"])).unwrap_err().contains("deadline"));
        assert!(parse_retries(&args(&["--retries", "many"]), 1).unwrap_err().contains("retries"));
        assert!(parse_engine(&args(&["--engine", "warp"])).is_err());
        assert!(parse_inject(&args(&["--inject", "nope"])).is_err());
        assert!(parse_campaign_spec(&args(&["--campaign", "x"])).is_err());
    }
}
