//! Crash-safe cell journal for matrix runs (`results/matrix.journal.jsonl`).
//!
//! `matrix.json` is written once, after every cell finishes — a SIGKILL
//! mid-matrix loses hours of completed work. The journal closes that
//! window: as each cell completes (or exhausts its retries), one JSONL
//! record is appended and fsynced via [`simcore::durable::DurableLog`]
//! before the worker moves on. After a crash, [`read_journal`] recovers
//! every acknowledged outcome and `make_tables --resume` re-runs only the
//! combos with no record, re-arming any fault campaign from the manifest
//! embedded in the journal's `begin` record.
//!
//! Record shapes (one compact JSON object per line):
//!
//! ```text
//! {"kind":"begin","schema":1,"size":"test","campaign":{...manifest...}}
//! {"kind":"cell","cell":{...ExperimentCell...}}
//! {"kind":"failure","failure":{...CellFailure...}}
//! ```
//!
//! The `begin` record pins the size class (resuming under a different
//! `--size` would silently mix incomparable measurements) and carries the
//! campaign manifest so a resumed sweep re-arms the *exact* recorded
//! schedule. Appends are whole-line writes followed by `fdatasync`, so a
//! crash can tear at most the final line; [`read_journal`] tolerates an
//! unterminated tail and reports it via [`JournalContents::torn_tail`].
//! Cells interrupted by SIGINT/SIGTERM are never journaled — an absent
//! record is exactly what marks a combo for re-running on resume.

use std::io;
use std::path::Path;

use analysis::{CellFailure, ExperimentCell, ResultMatrix};
use simcore::durable::DurableLog;
use telemetry::Json;

use crate::campaign::CampaignManifest;

/// Journal record schema version; bump on incompatible shape changes.
pub const JOURNAL_SCHEMA: u64 = 1;

/// Append-only, fsync-per-record writer for matrix cell outcomes.
pub struct CellJournal {
    log: DurableLog,
}

impl CellJournal {
    /// Start a fresh journal at `path`: any stale journal from a previous
    /// run is removed, then the `begin` record (schema, size class, and
    /// optional campaign manifest) is durably appended.
    pub fn create(
        path: &Path,
        size: &str,
        campaign: Option<&CampaignManifest>,
    ) -> io::Result<CellJournal> {
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut journal = CellJournal { log: DurableLog::open(path)? };
        let mut fields = vec![
            ("kind", Json::Str("begin".into())),
            ("schema", Json::Num(JOURNAL_SCHEMA as f64)),
            ("size", Json::Str(size.to_string())),
        ];
        if let Some(m) = campaign {
            fields.push(("campaign", manifest_value(m)));
        }
        journal.append(Json::obj(fields))?;
        Ok(journal)
    }

    /// Reopen an existing journal to continue appending after a resume.
    /// No `begin` record is written — the original one still governs.
    pub fn append_to(path: &Path) -> io::Result<CellJournal> {
        Ok(CellJournal { log: DurableLog::open(path)? })
    }

    /// Durably record one measured cell.
    pub fn record_cell(&mut self, cell: &ExperimentCell) -> io::Result<()> {
        self.append(Json::obj(vec![
            ("kind", Json::Str("cell".into())),
            ("cell", cell.to_json_value()),
        ]))
    }

    /// Durably record one terminal failure (retries exhausted or
    /// non-retryable).
    pub fn record_failure(&mut self, failure: &CellFailure) -> io::Result<()> {
        self.append(Json::obj(vec![
            ("kind", Json::Str("failure".into())),
            ("failure", failure.to_json_value()),
        ]))
    }

    fn append(&mut self, record: Json) -> io::Result<()> {
        let mut line = record.compact();
        line.push('\n');
        self.log.append(line.as_bytes())?;
        telemetry::global().counter_add("journal_records", 1);
        Ok(())
    }
}

/// Everything a resumed run recovers from a journal.
#[derive(Debug)]
pub struct JournalContents {
    /// Size-class name pinned by the `begin` record.
    pub size: String,
    /// Campaign manifest recorded at `begin`, if the run was a fault sweep.
    pub campaign: Option<CampaignManifest>,
    /// Recovered outcomes, in append (completion) order.
    pub matrix: ResultMatrix,
    /// True when the final line was torn by a crash mid-append (the torn
    /// record is discarded; its combo simply re-runs).
    pub torn_tail: bool,
}

/// Read a journal back, tolerating a torn final line.
///
/// Errors on: unreadable file, missing/invalid `begin` record, unknown
/// schema, or any *complete* line that does not parse — those indicate
/// corruption beyond the single torn-tail window the append discipline
/// permits.
pub fn read_journal(path: &Path) -> Result<JournalContents, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;

    // Split into complete (newline-terminated) records; trailing bytes
    // without a newline are a torn append.
    let mut records: Vec<&str> = Vec::new();
    let mut rest = text.as_str();
    while let Some(pos) = rest.find('\n') {
        records.push(&rest[..pos]);
        rest = &rest[pos + 1..];
    }
    let torn_tail = !rest.is_empty();

    let mut it = records.iter().filter(|l| !l.trim().is_empty());
    let begin_line = it.next().ok_or("journal is empty (no begin record)")?;
    let begin = Json::parse(begin_line).map_err(|e| format!("journal begin record: {e}"))?;
    if begin.get("kind").and_then(Json::as_str) != Some("begin") {
        return Err("journal does not start with a begin record".into());
    }
    let schema = begin
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or("journal begin record: missing schema")?;
    if schema != JOURNAL_SCHEMA {
        return Err(format!(
            "journal schema {schema} is not supported (expected {JOURNAL_SCHEMA})"
        ));
    }
    let size = begin
        .get("size")
        .and_then(Json::as_str)
        .ok_or("journal begin record: missing size")?
        .to_string();
    let campaign = match begin.get("campaign") {
        Some(c) => Some(
            CampaignManifest::from_json(&c.compact())
                .map_err(|e| format!("journal begin record: {e}"))?,
        ),
        None => None,
    };

    let mut matrix = ResultMatrix::default();
    for (i, line) in it.enumerate() {
        let rec =
            Json::parse(line).map_err(|e| format!("journal record {}: {e}", i + 2))?;
        match rec.get("kind").and_then(Json::as_str) {
            Some("cell") => {
                let cell = rec
                    .get("cell")
                    .ok_or_else(|| format!("journal record {}: missing cell body", i + 2))
                    .and_then(|c| {
                        ExperimentCell::from_json_value(c)
                            .map_err(|e| format!("journal record {}: {e}", i + 2))
                    })?;
                matrix.cells.push(cell);
            }
            Some("failure") => {
                let failure = rec
                    .get("failure")
                    .ok_or_else(|| format!("journal record {}: missing failure body", i + 2))
                    .and_then(|f| {
                        CellFailure::from_json_value(f)
                            .map_err(|e| format!("journal record {}: {e}", i + 2))
                    })?;
                matrix.failures.push(failure);
            }
            Some(other) => {
                return Err(format!("journal record {}: unknown kind {other:?}", i + 2))
            }
            None => return Err(format!("journal record {}: missing kind", i + 2)),
        }
    }

    Ok(JournalContents { size, campaign, matrix, torn_tail })
}

/// Embed a campaign manifest as a JSON value (same shape as
/// `CampaignManifest::to_json`, minus the pretty-printing).
fn manifest_value(m: &CampaignManifest) -> Json {
    Json::obj(vec![
        ("seed", Json::Str(format!("{:#x}", m.seed))),
        ("window", Json::Num(m.window as f64)),
        (
            "faults",
            Json::Arr(m.specs.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::CampaignSpec;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("isacmp-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_cell(workload: &str) -> ExperimentCell {
        ExperimentCell {
            workload: workload.into(),
            compiler: "gcc-12.2".into(),
            isa: "AArch64".into(),
            path_length: 123_456,
            critical_path: 10_000,
            scaled_cp: 60_000,
            kernels: vec![("copy".into(), 61_728), ("scale".into(), 61_728)],
            windows: vec![(4, 2.5, 1.5), (16, 8.0, 2.0)],
            fused: None,
        }
    }

    fn sample_failure() -> CellFailure {
        CellFailure {
            workload: "STREAM".into(),
            compiler: "gcc-9.2".into(),
            isa: "RISC-V".into(),
            kind: "timeout".into(),
            detail: "watchdog after 1s".into(),
            retries: 0,
        }
    }

    #[test]
    fn journal_round_trips_cells_failures_and_manifest() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("matrix.journal.jsonl");
        let manifest = CampaignManifest::sample(CampaignSpec { seed: 7, n_faults: 3 });
        {
            let mut j = CellJournal::create(&path, "test", Some(&manifest)).unwrap();
            j.record_cell(&sample_cell("stream")).unwrap();
            j.record_failure(&sample_failure()).unwrap();
            j.record_cell(&sample_cell("crc32")).unwrap();
        }
        let back = read_journal(&path).unwrap();
        assert_eq!(back.size, "test");
        assert_eq!(back.campaign.as_ref(), Some(&manifest));
        assert!(!back.torn_tail);
        assert_eq!(back.matrix.cells.len(), 2);
        assert_eq!(back.matrix.cells[0], sample_cell("stream"));
        assert_eq!(back.matrix.cells[1], sample_cell("crc32"));
        assert_eq!(back.matrix.failures, vec![sample_failure()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_and_reported() {
        let dir = tmp_dir("torn");
        let path = dir.join("matrix.journal.jsonl");
        {
            let mut j = CellJournal::create(&path, "small", None).unwrap();
            j.record_cell(&sample_cell("stream")).unwrap();
        }
        // Simulate a SIGKILL mid-append: a prefix of a record, no newline.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"kind\":\"cell\",\"cell\":{\"worklo").unwrap();
        drop(f);

        let back = read_journal(&path).unwrap();
        assert!(back.torn_tail, "unterminated tail must be flagged");
        assert_eq!(back.matrix.cells.len(), 1, "torn record is discarded");
        assert!(back.campaign.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_truncates_a_stale_journal_and_append_to_does_not() {
        let dir = tmp_dir("truncate");
        let path = dir.join("matrix.journal.jsonl");
        {
            let mut j = CellJournal::create(&path, "test", None).unwrap();
            j.record_cell(&sample_cell("stream")).unwrap();
        }
        {
            let mut j = CellJournal::append_to(&path).unwrap();
            j.record_cell(&sample_cell("crc32")).unwrap();
        }
        assert_eq!(read_journal(&path).unwrap().matrix.cells.len(), 2);
        {
            let _j = CellJournal::create(&path, "test", None).unwrap();
        }
        assert_eq!(read_journal(&path).unwrap().matrix.cells.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_complete_lines_and_bad_schema_are_rejected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("matrix.journal.jsonl");
        std::fs::write(&path, "{\"kind\":\"begin\",\"schema\":1,\"size\":\"test\"}\nnot json\n")
            .unwrap();
        assert!(read_journal(&path).unwrap_err().contains("journal record 2"));

        std::fs::write(&path, "{\"kind\":\"begin\",\"schema\":99,\"size\":\"test\"}\n").unwrap();
        assert!(read_journal(&path).unwrap_err().contains("schema 99"));

        std::fs::write(&path, "").unwrap();
        assert!(read_journal(&path).unwrap_err().contains("empty"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
