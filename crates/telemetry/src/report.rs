//! Structured, serializable run reports.

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use simcore::PhaseNanos;

use crate::json::Json;
use crate::profile::ProfilingObserver;
use crate::sampler::HotBlockProfile;
use crate::Telemetry;

/// Everything one tool invocation wants to persist about itself: what ran,
/// how long each stage took, how fast the guest executed, and (optionally) a
/// guest profile. Serializes to/from JSON without any external crates.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// The command line (or a description of it) that produced this report.
    pub command: String,
    /// Total wall time of the run in milliseconds.
    pub wall_ms: f64,
    /// Guest instructions retired (summed over all cells for batch tools).
    pub retired: u64,
    /// Guest exit code, if a single guest ran.
    pub exit_code: Option<u64>,
    /// Host emulation rate in million instructions per second.
    pub host_mips: f64,
    /// Estimated observer overhead as a percentage of bare emulation time
    /// (populated only when a calibration run was done).
    pub observer_overhead_pct: Option<f64>,
    /// Per-observer overhead attribution: `(observer name, pct of bare
    /// emulation time)`, from one calibration run per observer.
    pub observer_overheads: Vec<(String, f64)>,
    /// Span tree from the global [`Timeline`](crate::Timeline).
    pub spans: Json,
    /// Snapshot of the global [`MetricsRegistry`](crate::MetricsRegistry).
    pub metrics: Json,
    /// Guest profile from a [`ProfilingObserver`], if one was attached.
    pub profile: Option<Json>,
    /// Hot-block sampling profile (see [`crate::sampler`]), if one ran.
    pub sampler: Option<Json>,
    /// Retire-loop phase breakdown, when the run was built with the
    /// `phase-timers` feature and attributed any time.
    pub phases: Option<PhaseNanos>,
    /// Structured events drained from the hub's [`crate::EventLog`]
    /// (empty array when the run emitted none).
    pub events: Json,
    /// Free-form annotations.
    pub notes: Vec<String>,
}

impl RunReport {
    /// Report for `command`, everything else empty.
    pub fn new(command: &str) -> Self {
        RunReport {
            command: command.to_string(),
            spans: Json::Arr(Vec::new()),
            metrics: Json::obj(vec![]),
            events: Json::Arr(Vec::new()),
            ..Default::default()
        }
    }

    /// Record the headline run numbers; MIPS is derived from `retired`/`wall`
    /// via the shared [`simcore::host_mips`].
    pub fn with_run(mut self, wall: Duration, retired: u64, exit_code: Option<u64>) -> Self {
        self.wall_ms = wall.as_secs_f64() * 1e3;
        self.retired = retired;
        self.exit_code = exit_code;
        self.host_mips = simcore::host_mips(retired, wall);
        self
    }

    /// Attach a guest profile (top 10 regions/buckets).
    pub fn with_profile(mut self, profile: &ProfilingObserver) -> Self {
        self.profile = Some(profile.to_json(10));
        self
    }

    /// Attach a hot-block sampling profile (top 10 blocks).
    pub fn with_sampler(mut self, sampler: &HotBlockProfile) -> Self {
        self.sampler = Some(sampler.to_json(10));
        self
    }

    /// Attach a retire-loop phase breakdown; an all-zero breakdown (timers
    /// compiled out) is dropped rather than serialized as noise.
    pub fn with_phases(mut self, phases: PhaseNanos) -> Self {
        self.phases = (phases.total_ns() > 0).then_some(phases);
        self
    }

    /// Pull the span tree, metrics snapshot, and pending events out of
    /// `telemetry` (typically [`crate::global()`]). Events are snapshotted,
    /// not drained, so a later `--events` file still sees them.
    pub fn finish_from(mut self, telemetry: &Telemetry) -> Self {
        self.spans = telemetry.timeline().to_json();
        self.metrics = telemetry.metrics_json();
        self.events =
            Json::Arr(telemetry.events().snapshot().iter().map(|e| e.to_json()).collect());
        self
    }

    /// Add a free-form note.
    pub fn note(mut self, s: &str) -> Self {
        self.notes.push(s.to_string());
        self
    }

    /// Full JSON object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("command", Json::Str(self.command.clone())),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("retired", Json::Num(self.retired as f64)),
            (
                "exit_code",
                match self.exit_code {
                    Some(c) => Json::Num(c as f64),
                    None => Json::Null,
                },
            ),
            ("host_mips", Json::Num(self.host_mips)),
        ];
        if let Some(pct) = self.observer_overhead_pct {
            members.push(("observer_overhead_pct", Json::Num(pct)));
        }
        if !self.observer_overheads.is_empty() {
            members.push((
                "observer_overheads",
                Json::Arr(
                    self.observer_overheads
                        .iter()
                        .map(|(name, pct)| {
                            Json::obj(vec![
                                ("name", Json::Str(name.clone())),
                                ("pct", Json::Num(*pct)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(ph) = &self.phases {
            members.push((
                "phase_ns",
                Json::Obj(
                    ph.entries()
                        .iter()
                        .map(|(name, ns)| (name.to_string(), Json::Num(*ns as f64)))
                        .collect(),
                ),
            ));
        }
        members.push(("spans", self.spans.clone()));
        members.push(("metrics", self.metrics.clone()));
        if let Some(p) = &self.profile {
            members.push(("profile", p.clone()));
        }
        if let Some(s) = &self.sampler {
            members.push(("sampler", s.clone()));
        }
        if self.events.as_arr().is_some_and(|a| !a.is_empty()) {
            members.push(("events", self.events.clone()));
        }
        members.push((
            "notes",
            Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ));
        Json::obj(members)
    }

    /// Parse a report previously written by [`RunReport::to_json`].
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(RunReport {
            command: j.get("command")?.as_str()?.to_string(),
            wall_ms: j.get("wall_ms")?.as_f64()?,
            retired: j.get("retired")?.as_u64()?,
            exit_code: j.get("exit_code").and_then(Json::as_u64),
            host_mips: j.get("host_mips")?.as_f64()?,
            observer_overhead_pct: j.get("observer_overhead_pct").and_then(Json::as_f64),
            observer_overheads: j
                .get("observer_overheads")
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(|o| {
                            Some((
                                o.get("name")?.as_str()?.to_string(),
                                o.get("pct")?.as_f64()?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default(),
            spans: j.get("spans").cloned().unwrap_or(Json::Arr(Vec::new())),
            metrics: j.get("metrics").cloned().unwrap_or(Json::obj(vec![])),
            profile: j.get("profile").cloned(),
            sampler: j.get("sampler").cloned(),
            phases: j.get("phase_ns").map(|ph| {
                let ns = |k: &str| ph.get(k).and_then(Json::as_u64).unwrap_or(0);
                PhaseNanos {
                    fetch_ns: ns("fetch"),
                    decode_ns: ns("decode"),
                    execute_ns: ns("execute"),
                    observe_ns: ns("observe"),
                }
            }),
            events: j.get("events").cloned().unwrap_or(Json::Arr(Vec::new())),
            notes: j
                .get("notes")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(|n| n.as_str().map(str::to_string)).collect())
                .unwrap_or_default(),
        })
    }

    /// Host nanoseconds per retired guest instruction (rvr's headline
    /// cost column); 0 when nothing retired.
    pub fn host_ns_per_op(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.wall_ms * 1e6 / self.retired as f64
        }
    }

    /// One-line human summary: wall time, retired count, MIPS, ns/op.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "wall {:.1} ms | retired {} | {:.1} MIPS | {:.0} ns/op",
            self.wall_ms,
            crate::fmt_u64(self.retired),
            self.host_mips,
            self.host_ns_per_op(),
        );
        if let Some(c) = self.exit_code {
            s.push_str(&format!(" | exit {c}"));
        }
        if let Some(ph) = &self.phases {
            s.push_str(&format!(" | phases: {}", ph.summary()));
        }
        if let Some(pct) = self.observer_overhead_pct {
            s.push_str(&format!(" | observer overhead ~{pct:.0}%"));
        }
        for (name, pct) in &self.observer_overheads {
            s.push_str(&format!(" | {name} ~{pct:.0}%"));
        }
        s
    }

    /// Flamegraph-style collapsed stacks from the report's span tree (see
    /// [`crate::Timeline::to_collapsed`]). Works on freshly-built reports
    /// and on reports loaded back from JSON, since it reads the serialized
    /// `spans` array.
    pub fn to_collapsed(&self) -> String {
        let tuples: Vec<(String, Option<usize>, Option<u64>)> = self
            .spans
            .as_arr()
            .map(|a| {
                a.iter()
                    .filter_map(|s| {
                        Some((
                            s.get("name")?.as_str()?.to_string(),
                            s.get("parent").and_then(Json::as_u64).map(|p| p as usize),
                            s.get("dur_us").and_then(Json::as_u64),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default();
        crate::span::collapse_spans(&tuples)
    }

    /// Write the pretty-printed report to `path`.
    pub fn write_file(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().pretty().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_parse_back() {
        let report = RunReport::new("run_elf vec_add.elf")
            .with_run(Duration::from_millis(250), 1_000_000, Some(0))
            .note("test run");
        let text = report.to_json().pretty();
        let parsed = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.command, "run_elf vec_add.elf");
        assert_eq!(parsed.retired, 1_000_000);
        assert_eq!(parsed.exit_code, Some(0));
        assert!((parsed.wall_ms - 250.0).abs() < 1e-9);
        assert!((parsed.host_mips - 4.0).abs() < 1e-9);
        assert_eq!(parsed.notes, vec!["test run".to_string()]);
    }

    #[test]
    fn mips_derivation_handles_zero_wall() {
        let r = RunReport::new("x").with_run(Duration::ZERO, 100, None);
        assert_eq!(r.host_mips, 0.0);
        assert_eq!(r.exit_code, None);
    }

    #[test]
    fn summary_mentions_headline_numbers() {
        let mut r = RunReport::new("x").with_run(Duration::from_secs(1), 2_000_000, Some(3));
        r.observer_overhead_pct = Some(12.0);
        let s = r.summary();
        assert!(s.contains("2.0 MIPS"), "{s}");
        assert!(s.contains("exit 3"), "{s}");
        assert!(s.contains("12%"), "{s}");
    }

    #[test]
    fn observer_overheads_round_trip_and_collapse() {
        let tl = crate::Timeline::new();
        {
            let _a = tl.enter("emulate");
            let _b = tl.enter("verify");
        }
        let mut report = RunReport::new("run_elf x.elf");
        report.spans = tl.to_json();
        report.observer_overheads =
            vec![("path_length".to_string(), 3.5), ("trace_writer".to_string(), 12.0)];
        let text = report.to_json().pretty();
        let parsed = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.observer_overheads, report.observer_overheads);
        assert!(parsed.summary().contains("trace_writer ~12%"));
        // Collapsed export works on the *parsed* report too.
        let collapsed = parsed.to_collapsed();
        assert!(collapsed.contains("emulate;verify "), "{collapsed}");
    }

    #[test]
    fn phases_sampler_and_events_round_trip() {
        let tel = Telemetry::new();
        tel.event("watchdog_trip", &[("limit_ms", Json::Num(2000.0))]);
        let mut blocks = std::collections::HashMap::new();
        blocks.insert(0x1000u64, 4u64);
        let hb = crate::sampler::SampleProfile::from_parts(
            Duration::from_micros(250),
            blocks,
            0,
        )
        .attribute(&[]);
        let report = RunReport::new("run_elf x.elf")
            .with_run(Duration::from_millis(10), 20_000, Some(0))
            .with_sampler(&hb)
            .with_phases(PhaseNanos { fetch_ns: 1, decode_ns: 2, execute_ns: 3, observe_ns: 4 })
            .finish_from(&tel);
        assert!((report.host_ns_per_op() - 500.0).abs() < 1e-9);
        let text = report.to_json().pretty();
        let parsed = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            parsed.phases,
            Some(PhaseNanos { fetch_ns: 1, decode_ns: 2, execute_ns: 3, observe_ns: 4 })
        );
        assert_eq!(
            parsed.sampler.as_ref().unwrap().get("total_samples").unwrap().as_u64(),
            Some(4)
        );
        let events = parsed.events.as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("watchdog_trip"));
        assert!(parsed.summary().contains("ns/op"), "{}", parsed.summary());
        assert!(parsed.summary().contains("phases:"), "{}", parsed.summary());
        // Zero phase breakdown is dropped, not serialized.
        let plain = RunReport::new("x").with_phases(PhaseNanos::default());
        assert!(plain.phases.is_none());
        assert!(!plain.to_json().pretty().contains("phase_ns"));
    }

    #[test]
    fn write_file_round_trips() {
        let dir = std::env::temp_dir().join("telemetry-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let report = RunReport::new("make_tables table1").with_run(
            Duration::from_millis(10),
            42,
            None,
        );
        report.write_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.retired, 42);
        std::fs::remove_file(&path).ok();
    }
}
