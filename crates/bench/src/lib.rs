//! Benchmark crate: Criterion benches (one per paper table/figure) and the
//! `make_tables` harness binary that regenerates every artefact.
//!
//! See `src/bin/make_tables.rs` and the `benches/` directory.
//!
//! [`cli`] holds the flag grammar shared by every bin in this crate and
//! by the `isacmpd` daemon / `load_driver` in `crates/server`.

pub mod cli;

/// The experiment ids this crate can regenerate.
pub const EXPERIMENTS: [&str; 8] =
    ["table1", "table2", "fig1", "fig2", "ablation", "pipeline", "mix", "elves"];
