//! Negative tests: the back-ends must fail loudly and clearly when a
//! kernel exceeds the physical register files, rather than emitting
//! silently wrong code.

use kernelgen::*;
use simcore::IsaKind;

fn unit(arr: ArrayId) -> Access {
    Access { arr, strides: vec![1], offset: 0 }
}

/// A kernel touching `n` distinct arrays (each needs a cursor register).
fn many_arrays(n: usize) -> KernelProgram {
    let mut p = KernelProgram::new("wide");
    let arrays: Vec<ArrayId> =
        (0..n).map(|i| p.array(&format!("a{i}"), 8, ArrayInit::Fill(1.0))).collect();
    let sum = arrays[1..]
        .iter()
        .map(|&a| Expr::Load(unit(a)))
        .reduce(Expr::add)
        .unwrap();
    p.kernel(Kernel {
        name: "wide".into(),
        dims: vec![8],
        accs: vec![],
        body: vec![Stmt::Store { access: unit(arrays[0]), value: sum }],
    });
    p.checksum_arrays.push(arrays[0]);
    p
}

#[test]
fn reasonable_width_compiles_on_both() {
    // A dozen arrays fits both pools comfortably.
    let p = many_arrays(12);
    for isa in [IsaKind::RiscV, IsaKind::AArch64] {
        let c = compile(&p, isa, &Personality::gcc122());
        assert!(c.program.image_size() > 0);
    }
}

#[test]
#[should_panic(expected = "out of integer registers")]
fn riscv_register_exhaustion_panics_clearly() {
    let p = many_arrays(40);
    compile(&p, IsaKind::RiscV, &Personality::gcc122());
}

#[test]
#[should_panic(expected = "out of integer registers")]
fn arm_register_exhaustion_panics_clearly() {
    let p = many_arrays(40);
    compile(&p, IsaKind::AArch64, &Personality::gcc122());
}

#[test]
#[should_panic(expected = "out of pinned FP registers")]
fn too_many_temps_panics_clearly() {
    let mut p = KernelProgram::new("temps");
    let a = p.array("a", 8, ArrayInit::Fill(1.0));
    let body: Vec<Stmt> = (0..20)
        .map(|i| Stmt::Def { temp: TempId(i), expr: Expr::Load(unit(a)) })
        .collect();
    p.kernel(Kernel { name: "k".into(), dims: vec![8], accs: vec![], body });
    p.checksum_arrays.push(a);
    compile(&p, IsaKind::RiscV, &Personality::gcc122());
}
