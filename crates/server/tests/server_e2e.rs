//! End-to-end daemon tests: an in-process `Server` on a loopback port,
//! driven through the real `Client`.
//!
//! The shutdown flag is process-global, so every test that runs a server
//! serializes behind [`E2E_LOCK`] — a drained test server must not take a
//! concurrently-running one down with it.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

use isacmp::{
    matrix_combos, run_matrix_opts, shutdown, CellJournal, MatrixOptions, SizeClass, Workload,
};
use server::{Client, Config, JobOutcome, JobSpec, Server, ServerMsg};

static E2E_LOCK: Mutex<()> = Mutex::new(());

/// A unique scratch dir per test (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isacmpd-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// What a one-shot `make_tables table1 --size test` run would produce —
/// the byte-identity reference for daemon-served matrices.
fn one_shot_reference() -> String {
    let opts = MatrixOptions { retries: 1, heed_shutdown: true, ..Default::default() };
    run_matrix_opts(&Workload::ALL, SizeClass::Test, &opts).to_json()
}

/// Boot a server, run `f` against it, then drain it and restore the
/// global shutdown flag.
fn with_server(cfg: Config, f: impl FnOnce(SocketAddr)) {
    let _guard = E2E_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    shutdown::reset();
    let srv = Server::bind(cfg).expect("bind loopback");
    let addr = srv.local_addr().expect("bound addr");
    let handle = std::thread::spawn(move || srv.run());
    f(addr);
    shutdown::request();
    assert_eq!(handle.join().expect("server thread"), 0, "drain must exit 0");
    shutdown::reset();
}

fn test_config(tag: &str) -> Config {
    Config {
        jobs_dir: scratch(tag),
        max_jobs: 8,
        drain_timeout: std::time::Duration::from_secs(2),
        ..Config::default()
    }
}

fn expect_done(outcome: JobOutcome) -> (u64, u64, u64, String) {
    match outcome {
        JobOutcome::Done { hits, misses, failures, matrix_json } => {
            (hits, misses, failures, matrix_json)
        }
        other => panic!("expected a served matrix, got {other:?}"),
    }
}

#[test]
fn served_matrix_is_byte_identical_to_one_shot_run() {
    let reference = one_shot_reference();
    with_server(test_config("byte-identity"), |addr| {
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let total_cells = matrix_combos(&Workload::ALL).len() as u64;
        let mut progress = 0u64;
        let mut last_done = 0u64;
        let outcome = client
            .submit(&JobSpec::matrix(SizeClass::Test), |done, total, cell, _cached| {
                assert_eq!(total, total_cells);
                assert!(!cell.is_empty());
                progress += 1;
                last_done = done;
            })
            .expect("submit");
        let (hits, misses, failures, matrix_json) = expect_done(outcome);
        assert_eq!(progress, total_cells, "every cell streams a progress frame");
        assert_eq!(last_done, total_cells);
        assert_eq!(failures, 0);
        assert_eq!(hits + misses, total_cells);
        assert_eq!(matrix_json, reference, "daemon bytes == one-shot bytes");
    });
}

#[test]
fn repeated_submissions_are_served_from_the_cache() {
    with_server(test_config("cache-hits"), |addr| {
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let spec = JobSpec::matrix(SizeClass::Test);
        let total = matrix_combos(&Workload::ALL).len() as u64;

        let (hits, misses, _, first) = expect_done(client.submit(&spec, |_, _, _, _| {}).unwrap());
        assert_eq!((hits, misses), (0, total), "cold cache: all misses");

        let mut cached_frames = 0u64;
        let outcome = client
            .submit(&spec, |_, _, _, cached| {
                if cached {
                    cached_frames += 1;
                }
            })
            .unwrap();
        let (hits, misses, _, second) = expect_done(outcome);
        assert_eq!((hits, misses), (total, 0), "warm cache: all hits");
        assert_eq!(cached_frames, total, "every progress frame marked cached");
        assert_eq!(first, second, "cached bytes == computed bytes");

        let mut probe = Client::connect(&addr.to_string()).expect("connect");
        let stats = probe.stats().expect("stats");
        assert_eq!(stats.jobs_total, 2);
        assert_eq!(stats.cache_cells, total);
        assert_eq!(stats.cache_hits, total);
        assert_eq!(stats.cache_misses, total);
    });
}

#[test]
fn warm_start_serves_a_one_shot_artifact_without_recomputing() {
    let reference = one_shot_reference();
    let mut cfg = test_config("warm-start");
    let artifact = cfg.jobs_dir.join("matrix.json");
    std::fs::write(&artifact, &reference).expect("write artifact");
    cfg.warm = Some(artifact);
    cfg.warm_size = SizeClass::Test;
    with_server(cfg, |addr| {
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let total = matrix_combos(&Workload::ALL).len() as u64;
        let (hits, misses, _, served) =
            expect_done(client.submit(&JobSpec::matrix(SizeClass::Test), |_, _, _, _| {}).unwrap());
        assert_eq!((hits, misses), (total, 0), "warm cache: nothing recomputed");
        assert_eq!(served, reference);
    });
}

/// FNV-1a, matching the daemon's journal file naming (the algorithm is
/// pinned by `job_spec_canonical_is_stable_and_discriminating` plus this
/// test: together they freeze the journal-recovery contract).
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn restarted_daemon_recovers_a_killed_jobs_journal() {
    // Simulate the kill -9 lifecycle: a journal holding every cell of a
    // previous run sits in the jobs dir; a *fresh* daemon (cold cache)
    // receiving the same spec must serve entirely from the journal —
    // zero cells recomputed — and produce the exact one-shot bytes.
    let reference_matrix = {
        let opts = MatrixOptions { retries: 1, heed_shutdown: true, ..Default::default() };
        run_matrix_opts(&Workload::ALL, SizeClass::Test, &opts)
    };
    let cfg = test_config("journal-recovery");
    let spec = JobSpec::matrix(SizeClass::Test);
    let journal_path =
        cfg.jobs_dir.join(format!("job-{:016x}.journal.jsonl", fnv1a64(&spec.canonical())));
    let mut journal =
        CellJournal::create(&journal_path, SizeClass::Test.name(), None).expect("create journal");
    for cell in &reference_matrix.cells {
        journal.record_cell(cell).expect("record");
    }
    drop(journal);

    with_server(cfg, |addr| {
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let total = matrix_combos(&Workload::ALL).len() as u64;
        let mut recovered = 0u64;
        let outcome = client
            .submit(&spec, |_, _, _, cached| {
                if cached {
                    recovered += 1;
                }
            })
            .unwrap();
        let (hits, misses, failures, served) = expect_done(outcome);
        assert_eq!(recovered, total, "every cell recovered from the journal");
        assert_eq!((hits, misses, failures), (0, 0, 0), "nothing computed, nothing cached");
        assert_eq!(served, reference_matrix.to_json(), "recovered bytes == one-shot bytes");
    });
    assert!(!journal_path.exists(), "a cleanly completed job retires its journal");
}

#[test]
fn fused_and_unfused_jobs_never_share_cache_slots() {
    // Same size, same engine, opposite fusion axis: the daemon must key the
    // two apart (distinct CellKeys, distinct canonical/journal identities)
    // and a fused submission after a warm unfused one must recompute every
    // cell — a cross-contaminated hit would serve unfused bytes as fused.
    let fused_reference = {
        let opts =
            MatrixOptions { retries: 1, heed_shutdown: true, fusion: true, ..Default::default() };
        run_matrix_opts(&Workload::ALL, SizeClass::Test, &opts).to_json()
    };
    with_server(test_config("fusion-axis"), |addr| {
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        let total = matrix_combos(&Workload::ALL).len() as u64;

        let unfused_spec = JobSpec::matrix(SizeClass::Test);
        let mut fused_spec = JobSpec::matrix(SizeClass::Test);
        fused_spec.kind = server::JobKind::FusionReport;
        fused_spec.fusion = true;
        assert_ne!(unfused_spec.canonical(), fused_spec.canonical());

        let (hits, misses, _, unfused_json) =
            expect_done(client.submit(&unfused_spec, |_, _, _, _| {}).unwrap());
        assert_eq!((hits, misses), (0, total));

        // Warm unfused cache must not satisfy a single fused cell.
        let (hits, misses, failures, fused_json) =
            expect_done(client.submit(&fused_spec, |_, _, _, _| {}).unwrap());
        assert_eq!((hits, misses, failures), (0, total, 0), "fused run must miss everywhere");
        assert_ne!(fused_json, unfused_json);
        assert!(fused_json.contains("\"fused\""), "fused cells carry their report");
        assert!(!unfused_json.contains("\"fused\""), "unfused cells stay pre-fusion-identical");
        assert_eq!(fused_json, fused_reference, "daemon fused bytes == one-shot fused bytes");

        // Both axes now resident: each resubmission is all hits on its own
        // slots and returns its own bytes.
        let (hits, _, _, fused_again) =
            expect_done(client.submit(&fused_spec, |_, _, _, _| {}).unwrap());
        assert_eq!(hits, total);
        assert_eq!(fused_again, fused_json);
        let (hits, _, _, unfused_again) =
            expect_done(client.submit(&unfused_spec, |_, _, _, _| {}).unwrap());
        assert_eq!(hits, total);
        assert_eq!(unfused_again, unfused_json);

        let mut probe = Client::connect(&addr.to_string()).expect("connect");
        let stats = probe.stats().expect("stats");
        assert_eq!(stats.cache_cells, 2 * total, "both axes resident, keyed apart");
    });
}

#[test]
fn admission_control_rejects_with_typed_busy() {
    let cfg = Config { max_jobs: 0, ..test_config("admission") };
    with_server(cfg, |addr| {
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        match client.submit(&JobSpec::matrix(SizeClass::Test), |_, _, _, _| {}).unwrap() {
            JobOutcome::Busy { active, limit } => {
                assert_eq!(limit, 0);
                assert_eq!(active, 0);
            }
            other => panic!("expected busy, got {other:?}"),
        }
        // The connection survives a busy rejection.
        client.ping().expect("ping after busy");
    });
}

#[test]
fn ping_stats_and_bad_specs_on_one_connection() {
    with_server(test_config("ping-stats"), |addr| {
        let mut client = Client::connect(&addr.to_string()).expect("connect");
        client.ping().expect("ping");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.jobs_total, 0);
        assert!(stats.pool_workers > 0, "shard pool is live");

        // A structurally-invalid spec (campaign kind, no campaign spec)
        // is rejected with a typed error at submit time, client-side or
        // server-side — either way the submit call errors, not panics.
        let mut bad = JobSpec::matrix(SizeClass::Test);
        bad.kind = server::JobKind::Campaign;
        let err = client.submit(&bad, |_, _, _, _| {}).expect_err("invalid spec");
        assert!(err.to_string().contains("campaign"), "typed message, got: {err}");
    });
}

#[test]
fn draining_daemon_sends_typed_shutdown_frames() {
    let _guard = E2E_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    shutdown::reset();
    let srv = Server::bind(test_config("drain")).expect("bind");
    let addr = srv.local_addr().expect("addr");
    let handle = std::thread::spawn(move || srv.run());
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    // The ping round-trip proves a connection thread is attached before
    // the drain starts (a merely-queued connection is owed nothing).
    client.ping().expect("ping");

    shutdown::request();
    // The idle connection notices the flag within one poll interval and
    // says goodbye with a typed frame before closing.
    match client.read_next().expect("shutdown frame") {
        ServerMsg::Shutdown { signal } => assert!(!signal.is_empty()),
        other => panic!("expected shutdown frame, got {other:?}"),
    }
    assert_eq!(handle.join().expect("server thread"), 0, "SIGTERM drain exits 0");
    shutdown::reset();
}
