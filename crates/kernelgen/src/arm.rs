//! AArch64 back-end for the kernel IR.
//!
//! Lowering follows the idioms the paper observed in GCC's AArch64 output
//! (Listing 1): when the inner loop walks several unit-stride arrays, GCC
//! keeps a single shared index register and uses register-offset addressing
//! (`ldr d1, [x22, x0, lsl #3]`) — one `add` per iteration regardless of
//! array count — at the price of an NZCV-setting instruction before the
//! conditional back-edge (`cmp x0, x20; b.ne`). GCC 9.2 spends *two*
//! instructions setting the flags (`sub` + `subs` against a split constant
//! bound), the paper's 12.5 % STREAM path-length difference. Post-indexed
//! addressing (the paper's "more optimal solution" GCC never picks) is
//! available behind the [`Personality::arm_post_index`] ablation knob.

use std::collections::HashMap;

use isa_aarch64::{A64Asm, Cond, FpSize, IndexMode, Inst};


use crate::ir::*;
use crate::personality::Personality;
use crate::util::{
    access_counts, access_strides, arrays_used, canonical_offsets, collect_consts,
    distinct_access_sites, inner_stride,
};
use crate::Compiled;

const TEXT_BASE: u64 = 0x1_0000;
const DATA_BASE: u64 = 0x20_0000;

/// Integer registers handed out to cursors/counters/bases, in order.
/// (x29/x30 frame/link, x16-x18 scratch/platform, x0/x2/x8 clobbered at
/// exit only.)
const INT_POOL: &[u8] = &[
    3, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28,
];

/// FP registers for pinned values (accumulators, temps, hoisted constants).
const FP_PINNED: &[u8] = &[8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 26, 27, 28, 29, 30, 31];

/// FP scratch registers for expression evaluation.
const FP_SCRATCH: &[u8] = &[0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23];

struct IntAlloc {
    next: usize,
}

impl IntAlloc {
    fn new() -> Self {
        IntAlloc { next: 0 }
    }
    fn get(&mut self, what: &str) -> u8 {
        assert!(self.next < INT_POOL.len(), "arm backend out of integer registers ({what})");
        let r = INT_POOL[self.next];
        self.next += 1;
        r
    }
}

struct FpScratch {
    free: Vec<u8>,
}

impl FpScratch {
    fn new() -> Self {
        FpScratch { free: FP_SCRATCH.to_vec() }
    }
    fn alloc(&mut self) -> u8 {
        self.free.pop().expect("arm backend out of FP scratch registers")
    }
    fn release(&mut self, r: u8) {
        if FP_SCRATCH.contains(&r) && !self.free.contains(&r) {
            self.free.push(r);
        }
    }
}

#[derive(Clone, Copy)]
struct Val {
    reg: u8,
    scratch: bool,
}

/// Innermost-loop addressing strategy, chosen per kernel (modelling GCC's
/// induction-variable optimisation choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerMode {
    /// Shared index register, `[base, idx, lsl #3]` accesses (Listing 1).
    Index,
    /// Per-array pointer bumping with immediate offsets.
    PointerBump,
    /// Post-indexed accesses (`[base], #8`) — ablation only.
    PostIndex,
    /// No strided arrays: plain counted loop.
    Counter,
}

struct KernelCtx {
    cursors: HashMap<usize, u8>,
    /// Canonical offset folded into each array's cursor.
    canon: HashMap<usize, i64>,
    /// In index mode: precomputed base register per non-zero-offset site.
    site_bases: HashMap<(usize, i64), u8>,
    index_reg: Option<u8>,
    acc_regs: Vec<u8>,
    temp_regs: HashMap<usize, u8>,
    const_regs: HashMap<u64, u8>,
    int_scratch: [u8; 2],
    mode: InnerMode,
}

struct Backend<'a> {
    asm: A64Asm,
    p: &'a Personality,
    array_addrs: Vec<u64>,
    const_pool_addr: HashMap<u64, u64>,
}

impl Backend<'_> {
    /// `add rd, rn, imm` for any immediate.
    fn add_any(&mut self, rd: u8, rn: u8, imm: i64) {
        if imm == 0 {
            if rd != rn {
                self.asm.mov(rd, rn);
            }
        } else if (0..4096).contains(&imm) {
            self.asm.add_imm(rd, rn, imm as u64);
        } else if (-4095..0).contains(&imm) {
            self.asm.sub_imm(rd, rn, (-imm) as u64);
        } else {
            let tmp: u8 = 16; // ip0: a pure scratch outside the pool
            self.asm.mov_imm(tmp, imm as u64);
            self.asm.add(rd, rn, tmp);
        }
    }

    /// Load an FP constant into `dst` (used for hoisting and inline loads).
    fn load_const_inline(&mut self, ctx: &KernelCtx, bits: u64, dst: u8) {
        if bits == 0 {
            self.asm.push(Inst::FmovIntFp {
                to_fp: true,
                sf: true,
                size: FpSize::D,
                rd: dst,
                rn: 31,
            });
            return;
        }
        if let Some(imm8) = isa_aarch64::encode::f64_to_fp_imm8(f64::from_bits(bits)) {
            self.asm.push(Inst::FmovImm { size: FpSize::D, rd: dst, imm8 });
            return;
        }
        let addr = self.const_pool_addr[&bits];
        let t = ctx.int_scratch[1];
        self.asm.la(t, addr);
        self.asm.ldr_d_imm(dst, t, 0);
    }

    fn emit_mem(&mut self, ctx: &KernelCtx, acc: &Access, reg: u8, load: bool) {
        let arr = acc.arr.0;
        let rel = acc.offset - ctx.canon[&arr];
        let byte_off = rel * 8;
        let strided = *acc.strides.last().unwrap() != 0;
        match ctx.mode {
            InnerMode::Index if strided => {
                let base = if rel == 0 {
                    ctx.cursors[&arr]
                } else {
                    ctx.site_bases[&(arr, rel)]
                };
                let idx = ctx.index_reg.unwrap();
                if load {
                    self.asm.ldr_d_reg(reg, base, idx);
                } else {
                    self.asm.str_d_reg(reg, base, idx);
                }
            }
            InnerMode::PostIndex if strided => {
                let cursor = ctx.cursors[&arr];
                debug_assert_eq!(rel, 0);
                let stride = *acc.strides.last().unwrap();
                if load {
                    self.asm.ldr_d_post(reg, cursor, (8 * stride) as i16);
                } else {
                    self.asm.str_d_post(reg, cursor, (8 * stride) as i16);
                }
            }
            _ => {
                let cursor = ctx.cursors[&arr];
                if byte_off == 0 {
                    if load {
                        self.asm.ldr_d_imm(reg, cursor, 0);
                    } else {
                        self.asm.str_d_imm(reg, cursor, 0);
                    }
                } else if self.p.fold_const_offsets && byte_off > 0 && byte_off <= 32760 {
                    if load {
                        self.asm.ldr_d_imm(reg, cursor, byte_off as u64);
                    } else {
                        self.asm.str_d_imm(reg, cursor, byte_off as u64);
                    }
                } else if self.p.fold_const_offsets && (-256..0).contains(&byte_off) {
                    let inst = if load {
                        Inst::LdrFpIdx {
                            size: FpSize::D,
                            mode: IndexMode::Unscaled,
                            rt: reg,
                            rn: cursor,
                            simm9: byte_off as i16,
                        }
                    } else {
                        Inst::StrFpIdx {
                            size: FpSize::D,
                            mode: IndexMode::Unscaled,
                            rt: reg,
                            rn: cursor,
                            simm9: byte_off as i16,
                        }
                    };
                    self.asm.push(inst);
                } else {
                    let t = ctx.int_scratch[0];
                    self.add_any(t, cursor, byte_off);
                    if load {
                        self.asm.ldr_d_imm(reg, t, 0);
                    } else {
                        self.asm.str_d_imm(reg, t, 0);
                    }
                }
            }
        }
    }

    fn eval(&mut self, ctx: &KernelCtx, fs: &mut FpScratch, e: &Expr) -> Val {
        match e {
            Expr::Const(v) => {
                let bits = v.to_bits();
                if let Some(&r) = ctx.const_regs.get(&bits) {
                    return Val { reg: r, scratch: false };
                }
                let dst = fs.alloc();
                self.load_const_inline(ctx, bits, dst);
                Val { reg: dst, scratch: true }
            }
            Expr::Temp(t) => Val { reg: ctx.temp_regs[&t.0], scratch: false },
            Expr::Acc(a) => Val { reg: ctx.acc_regs[a.0], scratch: false },
            Expr::Load(acc) => {
                let dst = fs.alloc();
                self.emit_mem(ctx, acc, dst, true);
                Val { reg: dst, scratch: true }
            }
            Expr::Un(op, a) => {
                let av = self.eval(ctx, fs, a);
                let dst = if av.scratch { av.reg } else { fs.alloc() };
                match op {
                    UnOp::Neg => self.asm.fneg_d(dst, av.reg),
                    UnOp::Abs => self.asm.fabs_d(dst, av.reg),
                    UnOp::Sqrt => self.asm.fsqrt_d(dst, av.reg),
                }
                Val { reg: dst, scratch: true }
            }
            Expr::Bin(op, a, b) => {
                let av = self.eval(ctx, fs, a);
                let bv = self.eval(ctx, fs, b);
                let dst = if av.scratch {
                    av.reg
                } else if bv.scratch {
                    bv.reg
                } else {
                    fs.alloc()
                };
                match op {
                    BinOp::Add => self.asm.fadd_d(dst, av.reg, bv.reg),
                    BinOp::Sub => self.asm.fsub_d(dst, av.reg, bv.reg),
                    BinOp::Mul => self.asm.fmul_d(dst, av.reg, bv.reg),
                    BinOp::Div => self.asm.fdiv_d(dst, av.reg, bv.reg),
                    BinOp::Min => self.push_fminmax(false, dst, av.reg, bv.reg),
                    BinOp::Max => self.push_fminmax(true, dst, av.reg, bv.reg),
                }
                if av.scratch && av.reg != dst {
                    fs.release(av.reg);
                }
                if bv.scratch && bv.reg != dst {
                    fs.release(bv.reg);
                }
                Val { reg: dst, scratch: true }
            }
            Expr::MulAdd(a, b, c) => {
                let av = self.eval(ctx, fs, a);
                let bv = self.eval(ctx, fs, b);
                let cv = self.eval(ctx, fs, c);
                let dst = if av.scratch {
                    av.reg
                } else if bv.scratch {
                    bv.reg
                } else if cv.scratch {
                    cv.reg
                } else {
                    fs.alloc()
                };
                if self.p.fuse_fma {
                    self.asm.fmadd_d(dst, av.reg, bv.reg, cv.reg);
                } else {
                    let prod = if av.scratch {
                        av.reg
                    } else if bv.scratch {
                        bv.reg
                    } else {
                        dst
                    };
                    if prod == cv.reg {
                        let fresh = fs.alloc();
                        self.asm.fmul_d(fresh, av.reg, bv.reg);
                        self.asm.fadd_d(dst, fresh, cv.reg);
                        fs.release(fresh);
                    } else {
                        self.asm.fmul_d(prod, av.reg, bv.reg);
                        self.asm.fadd_d(dst, prod, cv.reg);
                    }
                }
                for v in [av, bv, cv] {
                    if v.scratch && v.reg != dst {
                        fs.release(v.reg);
                    }
                }
                Val { reg: dst, scratch: true }
            }
            Expr::Select { cmp, a, b, t, e } => {
                // fcmp + fcsel. Both arms are evaluated before the compare
                // so nested selects cannot clobber the NZCV flags.
                let av = self.eval(ctx, fs, a);
                let bv = self.eval(ctx, fs, b);
                let tv = self.eval(ctx, fs, t);
                let ev = self.eval(ctx, fs, e);
                self.asm.fcmp_d(av.reg, bv.reg);
                if av.scratch {
                    fs.release(av.reg);
                }
                if bv.scratch {
                    fs.release(bv.reg);
                }
                let dst = if tv.scratch {
                    tv.reg
                } else if ev.scratch {
                    ev.reg
                } else {
                    fs.alloc()
                };
                let cond = match cmp {
                    CmpOp::Lt => Cond::Mi,
                    CmpOp::Le => Cond::Ls,
                    CmpOp::Eq => Cond::Eq,
                };
                self.asm.push(Inst::Fcsel { size: FpSize::D, rd: dst, rn: tv.reg, rm: ev.reg, cond });
                if tv.scratch && tv.reg != dst {
                    fs.release(tv.reg);
                }
                if ev.scratch && ev.reg != dst {
                    fs.release(ev.reg);
                }
                Val { reg: dst, scratch: true }
            }
        }
    }

    fn push_fminmax(&mut self, max: bool, rd: u8, rn: u8, rm: u8) {
        let op = if max {
            isa_aarch64::FpBinOp::Fmaxnm
        } else {
            isa_aarch64::FpBinOp::Fminnm
        };
        self.asm.push(Inst::FpBin { op, size: FpSize::D, rd, rn, rm });
    }

    /// Emit the GCC-personality back-edge against a constant bound.
    fn const_bound_backedge(
        &mut self,
        iv: u8,
        bound: u64,
        bound_reg: Option<u8>,
        scratch: u8,
        label: isa_aarch64::asm::Label,
    ) {
        if self.p.arm_cmp_loop_exit {
            if bound < 4096 {
                self.asm.cmp_imm(iv, bound);
            } else {
                self.asm.cmp(iv, bound_reg.expect("bound register"));
            }
        } else if bound < 4096 {
            self.asm.push(Inst::AddSubImm {
                sub: true,
                set_flags: true,
                sf: true,
                rd: scratch,
                rn: iv,
                imm12: bound as u16,
                shift12: false,
            });
        } else {
            assert!(bound < (1 << 24), "trip count too large for sub/subs pair");
            let hi = (bound >> 12) as u16;
            let lo = (bound & 0xFFF) as u16;
            self.asm.push(Inst::AddSubImm {
                sub: true,
                set_flags: false,
                sf: true,
                rd: scratch,
                rn: iv,
                imm12: hi,
                shift12: true,
            });
            self.asm.push(Inst::AddSubImm {
                sub: true,
                set_flags: true,
                sf: true,
                rd: scratch,
                rn: scratch,
                imm12: lo,
                shift12: false,
            });
        }
        self.asm.b_ne(label);
    }

    fn lower_kernel(&mut self, k: &Kernel) {
        let ndim = k.dims.len();
        let arrays = arrays_used(k);
        let mut ia = IntAlloc::new();

        // Choose the innermost addressing strategy.
        let strided: Vec<(usize, i64)> = arrays
            .iter()
            .map(|&a| (a, inner_stride(k, a)))
            .filter(|&(_, s)| s != 0)
            .collect();
        let counts = access_counts(k);
        let all_unit = strided.iter().all(|&(_, s)| s == 1);
        // Post-indexing needs exactly one access per array per iteration
        // (the access itself performs the bump).
        let post_ok = self.p.arm_post_index
            && !strided.is_empty()
            && strided.iter().all(|&(a, s)| s.abs() == 1 && counts.get(&a) == Some(&1));
        // GCC picks the shared-index register-offset form when several
        // arrays are walked with the *same* index and no stencil offsets
        // (STREAM's kernels, Listing 1). Stencil accesses keep immediate
        // offsets from bumped pointers instead.
        let canon = canonical_offsets(k);
        let no_stencil = {
            let mut ok = true;
            crate::util::for_each_access(k, &mut |a| {
                if a.offset != canon[&a.arr.0] {
                    ok = false;
                }
            });
            ok
        };
        let mode = if strided.is_empty() {
            InnerMode::Counter
        } else if post_ok {
            InnerMode::PostIndex
        } else if self.p.arm_register_offset && all_unit && no_stencil && strided.len() >= 2 {
            InnerMode::Index
        } else {
            InnerMode::PointerBump
        };

        let mut ctx = KernelCtx {
            cursors: HashMap::new(),
            canon: canonical_offsets(k),
            site_bases: HashMap::new(),
            index_reg: None,
            acc_regs: Vec::new(),
            temp_regs: HashMap::new(),
            const_regs: HashMap::new(),
            int_scratch: [0, 0],
            mode,
        };
        ctx.int_scratch = [ia.get("addr scratch"), ia.get("cmp scratch")];

        self.asm.begin_region(&k.name);

        for &arr in &arrays {
            let r = ia.get("array cursor");
            ctx.cursors.insert(arr, r);
            let addr = (self.array_addrs[arr] as i64 + 8 * ctx.canon[&arr]) as u64;
            self.asm.la(r, addr);
        }

        if mode == InnerMode::Index {
            for (arr, offset) in distinct_access_sites(k) {
                let rel = offset - ctx.canon[&arr];
                if rel != 0 && inner_stride(k, arr) != 0 {
                    let r = ia.get("site base");
                    self.add_any(r, ctx.cursors[&arr], 8 * rel);
                    ctx.site_bases.insert((arr, rel), r);
                }
            }
        }

        // Pinned FP registers.
        let mut fp_pin = FP_PINNED.to_vec();
        let pin = |what: &str, fp_pin: &mut Vec<u8>| -> u8 {
            assert!(!fp_pin.is_empty(), "arm backend out of pinned FP registers ({what})");
            fp_pin.remove(0)
        };
        for acc in &k.accs {
            let r = pin("acc", &mut fp_pin);
            ctx.acc_regs.push(r);
            self.load_const_inline(&ctx, acc.init.to_bits(), r);
        }
        let mut temp_ids: Vec<usize> = Vec::new();
        for s in &k.body {
            if let Stmt::Def { temp, .. } = s {
                temp_ids.push(temp.0);
            }
        }
        for t in temp_ids {
            let r = pin("temp", &mut fp_pin);
            ctx.temp_regs.insert(t, r);
        }
        let mut consts = Vec::new();
        collect_consts(k, &mut consts);
        for bits in consts {
            if fp_pin.is_empty() {
                break;
            }
            let r = pin("const", &mut fp_pin);
            self.load_const_inline(&ctx, bits, r);
            ctx.const_regs.insert(bits, r);
        }

        // Outer loops.
        struct OuterLoop {
            counter: u8,
            label: isa_aarch64::asm::Label,
        }
        let mut outers: Vec<OuterLoop> = Vec::new();
        for d in 0..ndim - 1 {
            let counter = ia.get("outer counter");
            self.asm.mov_imm(counter, k.dims[d]);
            let label = self.asm.new_label();
            self.asm.bind(label);
            outers.push(OuterLoop { counter, label });
        }

        // Inner loop entry.
        let inner_trip = *k.dims.last().unwrap();
        let inner_label = self.asm.new_label();
        let mut end_reg: Option<(u8, usize)> = None;
        let mut counter_reg: Option<u8> = None;
        let mut bound_reg: Option<u8> = None;
        match mode {
            InnerMode::Index => {
                let iv = ia.get("index");
                ctx.index_reg = Some(iv);
                self.asm.mov_imm(iv, 0);
                if self.p.arm_cmp_loop_exit && inner_trip >= 4096 {
                    let b = ia.get("bound");
                    self.asm.mov_imm(b, inner_trip);
                    bound_reg = Some(b);
                }
            }
            InnerMode::PointerBump | InnerMode::PostIndex => {
                let (arr, stride) = strided[0];
                let r = ia.get("end pointer");
                let delta = 8 * stride * inner_trip as i64;
                self.add_any(r, ctx.cursors[&arr], delta);
                end_reg = Some((r, arr));
            }
            InnerMode::Counter => {
                let r = ia.get("inner counter");
                self.asm.mov_imm(r, inner_trip);
                counter_reg = Some(r);
            }
        }
        self.asm.bind(inner_label);

        // Body.
        let mut fs = FpScratch::new();
        for s in &k.body {
            match s {
                Stmt::Def { temp, expr } => {
                    let v = self.eval(&ctx, &mut fs, expr);
                    let pinreg = ctx.temp_regs[&temp.0];
                    if v.reg != pinreg {
                        self.asm.fmov_d(pinreg, v.reg);
                    }
                    if v.scratch {
                        fs.release(v.reg);
                    }
                }
                Stmt::Store { access, value } => {
                    let v = self.eval(&ctx, &mut fs, value);
                    self.emit_mem(&ctx, access, v.reg, false);
                    if v.scratch {
                        fs.release(v.reg);
                    }
                }
                Stmt::Accum { acc, op, value } => {
                    let v = self.eval(&ctx, &mut fs, value);
                    let a = ctx.acc_regs[acc.0];
                    match op {
                        BinOp::Add => self.asm.fadd_d(a, a, v.reg),
                        BinOp::Min => self.push_fminmax(false, a, a, v.reg),
                        BinOp::Max => self.push_fminmax(true, a, a, v.reg),
                        _ => unreachable!(),
                    }
                    if v.scratch {
                        fs.release(v.reg);
                    }
                }
            }
        }

        // Back edge.
        match mode {
            InnerMode::Index => {
                let iv = ctx.index_reg.unwrap();
                self.asm.add_imm(iv, iv, 1);
                self.const_bound_backedge(iv, inner_trip, bound_reg, ctx.int_scratch[1], inner_label);
            }
            InnerMode::PointerBump => {
                for &(arr, stride) in &strided {
                    let c = ctx.cursors[&arr];
                    self.add_any(c, c, 8 * stride);
                }
                let (end, arr) = end_reg.unwrap();
                self.asm.cmp(ctx.cursors[&arr], end);
                self.asm.b_ne(inner_label);
            }
            InnerMode::PostIndex => {
                let (end, arr) = end_reg.unwrap();
                self.asm.cmp(ctx.cursors[&arr], end);
                self.asm.b_ne(inner_label);
            }
            InnerMode::Counter => {
                let c = counter_reg.unwrap();
                self.asm.subs_imm(c, c, 1);
                self.asm.b_ne(inner_label);
            }
        }

        // Close outer loops with cursor/site-base adjustments.
        for d in (0..ndim.saturating_sub(1)).rev() {
            for &arr in &arrays {
                let strides = access_strides(k, arr);
                let stride_d = strides[d];
                let stride_next = strides[d + 1];
                let trip_next = k.dims[d + 1] as i64;
                // How far one full pass of level d+1 already moved the
                // cursor. The innermost level moves cursors only in the
                // bump modes; every *outer* level moves them by exactly its
                // stride per iteration (its own adjustment guarantees it).
                let moved = if d + 1 == ndim - 1 {
                    match mode {
                        InnerMode::PointerBump | InnerMode::PostIndex => stride_next * trip_next,
                        _ => 0,
                    }
                } else {
                    stride_next * trip_next
                };
                let adj = 8 * (stride_d - moved);
                if adj != 0 {
                    let c = ctx.cursors[&arr];
                    let resets = strides[..=d].iter().all(|&s| s == 0);
                    if resets {
                        // Loop-invariant base: re-derive instead of
                        // adjusting (GCC idiom; also breaks the pointer's
                        // dependency chain through the nest).
                        let addr =
                            (self.array_addrs[arr] as i64 + 8 * ctx.canon[&arr]) as u64;
                        self.asm.la(c, addr);
                    } else {
                        self.add_any(c, c, adj);
                    }
                    if mode == InnerMode::Index {
                        let bases: Vec<(i64, u8)> = ctx
                            .site_bases
                            .iter()
                            .filter(|((a, _), _)| *a == arr)
                            .map(|(&(_, rel), &b)| (rel, b))
                            .collect();
                        for (rel, base) in bases {
                            if resets {
                                self.add_any(base, c, 8 * rel);
                            } else {
                                self.add_any(base, base, adj);
                            }
                        }
                    }
                }
            }
            // Reset the shared index for the next iteration of this level.
            if mode == InnerMode::Index {
                if let Some(iv) = ctx.index_reg {
                    self.asm.mov_imm(iv, 0);
                }
            }
            let o = &outers[d];
            self.asm.subs_imm(o.counter, o.counter, 1);
            self.asm.b_ne(o.label);
        }

        // Store accumulators.
        for (i, acc) in k.accs.iter().enumerate() {
            if let Some((arr, elem)) = acc.store_to {
                let addr = self.array_addrs[arr.0] + 8 * elem;
                let t = ctx.int_scratch[0];
                self.asm.la(t, addr);
                self.asm.str_d_imm(ctx.acc_regs[i], t, 0);
            }
        }
        self.asm.end_region();
    }
}

/// Compile `prog` for AArch64.
pub fn compile(prog: &KernelProgram, p: &Personality) -> Compiled {
    prog.validate();
    let (aug, result_arr) = augment_with_checksum(prog);
    let mut asm = A64Asm::new(TEXT_BASE, DATA_BASE);

    let mut array_addrs = Vec::with_capacity(aug.arrays.len());
    for decl in &aug.arrays {
        let addr = match &decl.init {
            ArrayInit::Zero => asm.data_zero(8 * decl.len as usize, 8),
            _ => asm.data_f64_array(&init_values(decl)),
        };
        array_addrs.push(addr);
    }
    let mut const_pool_addr = HashMap::new();
    let mut pool_consts = Vec::new();
    for k in &aug.kernels {
        collect_consts(k, &mut pool_consts);
        for acc in &k.accs {
            let b = acc.init.to_bits();
            if !pool_consts.contains(&b) {
                pool_consts.push(b);
            }
        }
    }
    for bits in pool_consts {
        let addr = asm.data_u64(bits);
        const_pool_addr.insert(bits, addr);
    }

    let mut be = Backend { asm, p, array_addrs, const_pool_addr };

    let n_orig = prog.kernels.len();
    let rep_reg = 2; // x2: clobbered only by the exit sequence
    if aug.repeat > 1 {
        be.asm.mov_imm(rep_reg, aug.repeat);
    }
    let rep_label = be.asm.new_label();
    be.asm.bind(rep_label);
    for k in &aug.kernels[..n_orig] {
        be.lower_kernel(k);
    }
    if aug.repeat > 1 {
        be.asm.subs_imm(rep_reg, rep_reg, 1);
        be.asm.b_ne(rep_label);
    }
    for k in &aug.kernels[n_orig..] {
        be.lower_kernel(k);
    }
    be.asm.exit(0);

    let checksum_addr = be.array_addrs[result_arr.0];
    let array_addrs = aug
        .arrays
        .iter()
        .zip(be.array_addrs.iter())
        .map(|(d, a)| (d.name.clone(), *a))
        .collect();
    Compiled { program: be.asm.finish(), checksum_addr, array_addrs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;
    use isa_aarch64::AArch64Executor;
    use simcore::{CpuState, EmulationCore};

    fn run(program: &simcore::Program) -> CpuState {
        let mut st = CpuState::new();
        program.load(&mut st).unwrap();
        let core = EmulationCore::new(AArch64Executor::new());
        core.run(&mut st, &mut []).unwrap();
        st
    }

    fn check(prog: &KernelProgram, p: &Personality) -> u64 {
        let expected = interpret(prog, p).checksum;
        let c = compile(prog, p);
        let st = run(&c.program);
        let got = st.mem.read_f64(c.checksum_addr).unwrap();
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "checksum mismatch for {}: got {got}, expected {expected}",
            prog.name
        );
        st.instret
    }

    fn unit(arr: ArrayId) -> Access {
        Access { arr, strides: vec![1], offset: 0 }
    }

    fn copy_program(n: u64) -> KernelProgram {
        let mut p = KernelProgram::new("copy");
        let a = p.array("a", n, ArrayInit::Linear { start: 0.5, step: 0.25 });
        let b = p.array("b", n, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "copy".into(),
            dims: vec![n],
            accs: vec![],
            body: vec![Stmt::Store { access: unit(b), value: Expr::Load(unit(a)) }],
        });
        p.checksum_arrays.push(b);
        p
    }

    #[test]
    fn copy_kernel_both_personalities() {
        let p = copy_program(64);
        check(&p, &Personality::gcc92());
        check(&p, &Personality::gcc122());
    }

    #[test]
    fn gcc92_longer_than_gcc122() {
        // The paper's STREAM finding: the 9.2 loop exit costs one extra
        // instruction per iteration on AArch64 (trip >= 4096 forces the
        // two-instruction sub/subs pattern).
        let p = copy_program(5000);
        let n92 = check(&p, &Personality::gcc92());
        let n122 = check(&p, &Personality::gcc122());
        assert!(n92 > n122, "gcc 9.2 ({n92}) should exceed 12.2 ({n122})");
        // ~1 instruction per iteration; 12.2 spends one extra setup
        // instruction materialising the bound register outside the loop.
        assert!(
            n92 - n122 >= 4990,
            "difference ({}) should be about one instruction per iteration",
            n92 - n122
        );
    }

    #[test]
    fn post_index_beats_register_offset() {
        // The paper's "more optimal" 4-instruction copy loop.
        let p = copy_program(256);
        let mut post = Personality::gcc122();
        post.arm_post_index = true;
        let n_post = check(&p, &post);
        let n_reg = check(&p, &Personality::gcc122());
        assert!(n_post < n_reg, "post-indexed ({n_post}) should beat register-offset ({n_reg})");
    }

    #[test]
    fn triad_and_fma() {
        let mut p = KernelProgram::new("triad");
        let a = p.array("a", 32, ArrayInit::Zero);
        let b = p.array("b", 32, ArrayInit::Linear { start: 1.0, step: 1.0 });
        let c = p.array("c", 32, ArrayInit::Linear { start: 2.0, step: 0.5 });
        p.kernel(Kernel {
            name: "triad".into(),
            dims: vec![32],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(a),
                value: Expr::mul_add(Expr::Const(3.0), Expr::Load(unit(c)), Expr::Load(unit(b))),
            }],
        });
        p.checksum_arrays.push(a);
        check(&p, &Personality::gcc122());
        check(&p, &Personality::gcc92());
        let mut nofma = Personality::gcc122();
        nofma.fuse_fma = false;
        check(&p, &nofma);
    }

    #[test]
    fn stencil_with_offsets() {
        let mut p = KernelProgram::new("stencil");
        let a = p.array("a", 66, ArrayInit::Linear { start: 0.0, step: 1.0 });
        let b = p.array("b", 66, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "stencil".into(),
            dims: vec![64],
            accs: vec![],
            body: vec![Stmt::Store {
                access: Access { arr: b, strides: vec![1], offset: 1 },
                value: Expr::mul(
                    Expr::add(
                        Expr::Load(Access { arr: a, strides: vec![1], offset: 0 }),
                        Expr::Load(Access { arr: a, strides: vec![1], offset: 2 }),
                    ),
                    Expr::Const(0.5),
                ),
            }],
        });
        p.checksum_arrays.push(b);
        check(&p, &Personality::gcc92());
        check(&p, &Personality::gcc122());
    }

    #[test]
    fn two_dim_and_three_dim() {
        let mut p = KernelProgram::new("rows");
        let m = p.array("m", 40, ArrayInit::Linear { start: 0.0, step: 1.0 });
        let out = p.array("out", 40, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "scale2d".into(),
            dims: vec![5, 8],
            accs: vec![],
            body: vec![Stmt::Store {
                access: Access { arr: out, strides: vec![8, 1], offset: 0 },
                value: Expr::mul(
                    Expr::Load(Access { arr: m, strides: vec![8, 1], offset: 0 }),
                    Expr::Const(2.0),
                ),
            }],
        });
        p.checksum_arrays.push(out);
        check(&p, &Personality::gcc122());
        check(&p, &Personality::gcc92());

        let mut q = KernelProgram::new("dot3");
        let m = q.array("m", 24, ArrayInit::Linear { start: 1.0, step: 0.5 });
        let out = q.array("out", 1, ArrayInit::Zero);
        q.kernel(Kernel {
            name: "sum3".into(),
            dims: vec![2, 3, 4],
            accs: vec![AccDecl { init: 0.0, store_to: Some((out, 0)) }],
            body: vec![Stmt::Accum {
                acc: AccId(0),
                op: BinOp::Add,
                value: Expr::Load(Access { arr: m, strides: vec![12, 4, 1], offset: 0 }),
            }],
        });
        q.checksum_arrays.push(out);
        check(&q, &Personality::gcc122());
    }

    #[test]
    fn select_via_fcsel() {
        let mut p = KernelProgram::new("sel");
        let a = p.array("a", 16, ArrayInit::Linear { start: -4.0, step: 0.75 });
        let b = p.array("b", 16, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "relu".into(),
            dims: vec![16],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(b),
                value: Expr::Select {
                    cmp: CmpOp::Lt,
                    a: Box::new(Expr::Load(unit(a))),
                    b: Box::new(Expr::Const(0.0)),
                    t: Box::new(Expr::Const(0.0)),
                    e: Box::new(Expr::Load(unit(a))),
                },
            }],
        });
        p.checksum_arrays.push(b);
        check(&p, &Personality::gcc122());
        check(&p, &Personality::gcc92());
    }

    #[test]
    fn repeat_loop() {
        let mut p = KernelProgram::new("multi");
        let a = p.array("a", 8, ArrayInit::Fill(1.0));
        let b = p.array("b", 8, ArrayInit::Zero);
        p.kernel(Kernel {
            name: "k1".into(),
            dims: vec![8],
            accs: vec![],
            body: vec![Stmt::Store {
                access: unit(b),
                value: Expr::add(Expr::Load(unit(b)), Expr::Load(unit(a))),
            }],
        });
        p.repeat = 3;
        p.checksum_arrays.push(b);
        let c = compile(&p, &Personality::gcc122());
        let st = run(&c.program);
        assert_eq!(st.mem.read_f64(c.checksum_addr).unwrap(), 24.0);
    }

    #[test]
    fn riscv_and_arm_agree() {
        // Cross-ISA differential: identical checksums from both back-ends.
        let p = copy_program(100);
        let arm = compile(&p, &Personality::gcc122());
        let rv = crate::riscv::compile(&p, &Personality::gcc122());
        let arm_st = run(&arm.program);
        let mut rv_st = CpuState::new();
        rv.program.load(&mut rv_st).unwrap();
        EmulationCore::new(isa_riscv::RiscVExecutor::new())
            .run(&mut rv_st, &mut [])
            .unwrap();
        assert_eq!(
            arm_st.mem.read_f64(arm.checksum_addr).unwrap().to_bits(),
            rv_st.mem.read_f64(rv.checksum_addr).unwrap().to_bits()
        );
    }
}
