//! Differential crash-safety tests through the shipped binaries: a
//! checkpointed `run_elf` killed mid-run must restore to a byte-identical
//! final trace and identical analysis tables, and a `make_tables` matrix
//! killed by SIGKILL mid-sweep — with or without a fault campaign armed —
//! must resume from its cell journal to a byte-identical
//! `results/matrix.json`.
//!
//! These tests race a real kill against a real run, so they tolerate the
//! benign outcome where the victim finishes first — the resume leg is
//! exercised (and its output compared byte-for-byte) either way; only
//! the interruption point differs.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// Trailer suffix excluded from trace byte-identity: the capture wall
/// time (u64) plus the trailer checksum (u64) that covers it. Everything
/// before — every record, every block checksum, the total-record count
/// and the final state hash — must match exactly.
const TRACE_WALL_SUFFIX: usize = 16;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(bin: &str, dir: &Path, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(exe(bin)).args(args).current_dir(dir).output().expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn exe(bin: &str) -> &'static str {
    match bin {
        "make_tables" => env!("CARGO_BIN_EXE_make_tables"),
        "run_elf" => env!("CARGO_BIN_EXE_run_elf"),
        "trace_tool" => env!("CARGO_BIN_EXE_trace_tool"),
        other => panic!("unknown bin {other}"),
    }
}

/// The run's analysis output with run-to-run noise removed: wall-clock
/// lines carry host timing and the trace line carries the output path,
/// neither of which is part of the determinism contract.
fn analysis_lines(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("run ") && !l.starts_with("trace ") && !l.starts_with('/')
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn killed_checkpointed_run_restores_byte_identically() {
    let dir = scratch("crashrun");
    let (code, _, stderr) = run("make_tables", &dir, &["elves", "--size", "small"]);
    assert_eq!(code, 0, "elves must build:\n{stderr}");
    let elf = "results/bin/stream-gcc-12.2-riscv64.elf";

    // Reference: one uninterrupted captured run.
    let (code, ref_out, stderr) = run("run_elf", &dir, &[elf, "--trace-out", "ref.trace"]);
    assert_eq!(code, 0, "reference run:\n{stderr}");
    let ref_trace = std::fs::read(dir.join("ref.trace")).expect("reference trace");

    // Victim: same run with periodic durable snapshots, killed (SIGKILL,
    // no cleanup handlers) as soon as the first snapshot lands.
    let mut child = Command::new(exe("run_elf"))
        .args([elf, "--trace-out", "crash.trace", "--checkpoint", "crash.ckpt"])
        .args(["--checkpoint-every", "400000"])
        .current_dir(&dir)
        .spawn()
        .expect("victim spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !dir.join("crash.ckpt").exists() {
        assert!(Instant::now() < deadline, "no checkpoint within 60s");
        if child.try_wait().expect("try_wait").is_some() {
            break; // finished before the kill — snapshot is still mid-run
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().ok();
    child.wait().expect("victim reaped");

    // The snapshot is written tmp+rename, so its mere existence means it
    // is complete; the trace was fsync'd before it, so the bytes the
    // mark points at survived the kill.
    assert!(dir.join("crash.ckpt").exists());

    // Restore: continue the partial capture to completion.
    let (code, resumed_out, stderr) =
        run("run_elf", &dir, &[elf, "--restore", "crash.ckpt", "--trace-out", "crash.trace"]);
    assert_eq!(code, 0, "restore must finish the run:\n{stderr}");
    assert!(stderr.contains("restored: crash.ckpt"), "{stderr}");

    // Byte-identity: the resumed trace equals the uninterrupted one in
    // every byte except the trailer's wall-time field (and the checksum
    // covering it) — record bytes, block checksums and the final state
    // hash all included.
    let resumed_trace = std::fs::read(dir.join("crash.trace")).expect("resumed trace");
    assert_eq!(resumed_trace.len(), ref_trace.len(), "trace sizes differ");
    let cut = ref_trace.len() - TRACE_WALL_SUFFIX;
    assert_eq!(
        &resumed_trace[..cut],
        &ref_trace[..cut],
        "resumed trace diverges from the uninterrupted capture"
    );

    // The analysis tables (path length, critical path, per-kernel and
    // windowed ILP) must be identical too — the replayed prefix fed the
    // observers exactly what the live run did.
    assert_eq!(analysis_lines(&resumed_out), analysis_lines(&ref_out));
}

#[test]
fn sigkill_mid_matrix_resumes_to_byte_identical_results() {
    let reference = scratch("crashmat-ref");
    let victim = scratch("crashmat-victim");
    let journal = victim.join("results/matrix.journal.jsonl");

    // Reference: one uninterrupted sweep. Its journal must not outlive
    // the clean completion.
    let (code, _, stderr) = run("make_tables", &reference, &["table1", "--size", "test"]);
    assert_eq!(code, 0, "reference matrix:\n{stderr}");
    assert!(
        !reference.join("results/matrix.journal.jsonl").exists(),
        "journal must be deleted after a clean run"
    );
    let ref_matrix = std::fs::read(reference.join("results/matrix.json")).expect("reference");

    // Victim: SIGKILL once the journal holds at least one completed
    // cell (each line is fsync'd before the worker moves on, so the
    // kill cannot cost us a recorded outcome).
    let mut child = Command::new(exe("make_tables"))
        .args(["table1", "--size", "test"])
        .current_dir(&victim)
        .spawn()
        .expect("victim spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "no journalled cells within 120s");
        let text = std::fs::read_to_string(&journal).unwrap_or_default();
        let done = text.ends_with('\n') && text.contains("\"kind\":\"cell\"");
        if done || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    child.kill().ok();
    child.wait().expect("victim reaped");

    // Resume: the surviving journal supersedes the (absent or partial)
    // matrix JSON, re-runs only the missing cells, and reassembles the
    // matrix in canonical order.
    let (code, _, stderr) =
        run("make_tables", &victim, &["table1", "--size", "test", "--resume", "results/matrix.json"]);
    assert_eq!(code, 0, "resume must complete the sweep:\n{stderr}");

    let resumed_matrix = std::fs::read(victim.join("results/matrix.json")).expect("resumed");
    assert_eq!(
        resumed_matrix, ref_matrix,
        "resumed matrix.json must be byte-identical to an uninterrupted run's"
    );
    assert!(!journal.exists(), "journal must be deleted after the resumed run completes");
}

#[test]
fn sigkill_mid_campaign_resumes_with_rearmed_schedule() {
    let reference = scratch("crashcamp-ref");
    let victim = scratch("crashcamp-victim");
    let journal = victim.join("results/matrix.journal.jsonl");

    // Reference: an uninterrupted seeded campaign sweep (every cell
    // degrades deterministically under the seed-7 schedule).
    let (code, _, stderr) =
        run("make_tables", &reference, &["table1", "--size", "test", "--campaign", "7:3"]);
    assert_eq!(code, 0, "reference campaign sweep:\n{stderr}");
    let ref_matrix = std::fs::read(reference.join("results/matrix.json")).expect("reference");
    let ref_manifest = std::fs::read(reference.join("results/campaign.json")).expect("manifest");

    // Victim: SIGKILL once the journal exists (its begin record carries
    // the campaign manifest; any recorded outcomes are kept verbatim).
    let mut child = Command::new(exe("make_tables"))
        .args(["table1", "--size", "test", "--campaign", "7:3"])
        .current_dir(&victim)
        .spawn()
        .expect("victim spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "no journal within 120s");
        let text = std::fs::read_to_string(&journal).unwrap_or_default();
        if text.contains("\"kind\":") || child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    child.kill().ok();
    child.wait().expect("victim reaped");

    if !journal.exists() {
        // The victim won the race and completed cleanly (journal deleted
        // on clean exit). A plain --resume would now heal the campaign's
        // failures instead of re-arming them, so the only meaningful
        // check left is determinism of the finished sweep.
        let matrix = std::fs::read(victim.join("results/matrix.json")).expect("matrix");
        assert_eq!(matrix, ref_matrix, "uninterrupted campaign must match the reference");
        return;
    }

    // Resume WITHOUT --campaign: the schedule is re-armed from the
    // journal's begin record, so the healed sweep runs the exact same
    // faults and reproduces the reference bytes.
    let (code, _, stderr) =
        run("make_tables", &victim, &["table1", "--size", "test", "--resume", "results/matrix.json"]);
    assert_eq!(code, 0, "campaign resume:\n{stderr}");

    let resumed_matrix = std::fs::read(victim.join("results/matrix.json")).expect("resumed");
    assert_eq!(resumed_matrix, ref_matrix, "campaign matrix must resume byte-identically");
    let resumed_manifest = std::fs::read(victim.join("results/campaign.json")).expect("manifest");
    assert_eq!(resumed_manifest, ref_manifest, "campaign manifest must be unchanged");
    assert!(!journal.exists(), "journal must be deleted after the resumed sweep completes");
}

/// Cross-engine conformance through the shipped binaries: the legacy and
/// block engines must capture byte-identical traces (modulo the trailer
/// wall time) and identical analysis tables, `trace_tool diff` must agree
/// (exit 0), and a block-engine run killed at a checkpoint and restored
/// cache-cold must still reproduce the legacy engine's trace bytes.
#[test]
fn block_engine_traces_match_legacy_through_crash_and_restore() {
    let dir = scratch("crossengine");
    let (code, _, stderr) = run("make_tables", &dir, &["elves", "--size", "small"]);
    assert_eq!(code, 0, "elves must build:\n{stderr}");
    let elf = "results/bin/stream-gcc-12.2-riscv64.elf";

    // Reference: legacy engine, uninterrupted.
    let (code, legacy_out, stderr) =
        run("run_elf", &dir, &[elf, "--engine", "legacy", "--trace-out", "legacy.trace"]);
    assert_eq!(code, 0, "legacy run:\n{stderr}");
    let legacy_trace = std::fs::read(dir.join("legacy.trace")).expect("legacy trace");

    // Block engine, uninterrupted: identical bytes and tables.
    let (code, block_out, stderr) =
        run("run_elf", &dir, &[elf, "--engine", "block", "--trace-out", "block.trace"]);
    assert_eq!(code, 0, "block run:\n{stderr}");
    let block_trace = std::fs::read(dir.join("block.trace")).expect("block trace");
    assert_eq!(block_trace.len(), legacy_trace.len(), "trace sizes differ across engines");
    let cut = legacy_trace.len() - TRACE_WALL_SUFFIX;
    assert_eq!(
        &block_trace[..cut],
        &legacy_trace[..cut],
        "block-engine trace diverges from the legacy capture"
    );
    assert_eq!(analysis_lines(&block_out), analysis_lines(&legacy_out));

    // The shipped comparator agrees: exit 0, no divergence.
    let (code, diff_out, stderr) = run("trace_tool", &dir, &["diff", "legacy.trace", "block.trace"]);
    assert_eq!(code, 0, "trace_tool diff must exit 0:\n{stderr}");
    assert!(diff_out.contains("traces are identical"), "unexpected diff output:\n{diff_out}");

    // Crash leg: a checkpointed block-engine run killed mid-flight and
    // restored into a fresh process (cold block cache) must finish the
    // capture byte-identical to the legacy reference.
    let mut child = Command::new(exe("run_elf"))
        .args([elf, "--engine", "block", "--trace-out", "crash.trace"])
        .args(["--checkpoint", "crash.ckpt", "--checkpoint-every", "400000"])
        .current_dir(&dir)
        .spawn()
        .expect("victim spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !dir.join("crash.ckpt").exists() {
        assert!(Instant::now() < deadline, "no checkpoint within 60s");
        if child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().ok();
    child.wait().expect("victim reaped");

    let (code, _, stderr) = run(
        "run_elf",
        &dir,
        &[elf, "--engine", "block", "--restore", "crash.ckpt", "--trace-out", "crash.trace"],
    );
    assert_eq!(code, 0, "restore must finish the run:\n{stderr}");
    let resumed_trace = std::fs::read(dir.join("crash.trace")).expect("resumed trace");
    assert_eq!(resumed_trace.len(), legacy_trace.len(), "resumed trace size differs");
    assert_eq!(
        &resumed_trace[..cut],
        &legacy_trace[..cut],
        "cold-cache block restore diverges from the legacy capture"
    );
}
