//! Windowed critical-path analysis — the paper's §6.
//!
//! "Sliding a window of differing sizes over the full execution path, we
//! determine the critical path for the set of instructions in the current
//! window, moving the window 50 % of its size further along the path once
//! this is done." The window models a ROB of that size with infinite
//! physical registers and perfect branch prediction; instruction latency is
//! not accounted for (§6.1).
//!
//! All window sizes are measured in a single pass: a shared ring buffer
//! holds the most recent `max(sizes)` retirement records, and each size
//! recomputes its window CP every `size/2` retirements — O(2) amortised
//! work per instruction per window size.

use std::collections::VecDeque;

use simcore::{Observer, RetireSource, RetiredInst, SimError, WordMap, NUM_REG_SLOTS};

/// The window sizes used in the paper's Figure 2.
pub const PAPER_WINDOW_SIZES: [usize; 7] = [4, 16, 64, 200, 500, 1000, 2000];

/// Statistics for one window size.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window size (hypothetical ROB entries).
    pub size: usize,
    /// Number of full windows measured.
    pub windows: u64,
    /// Sum of window CP lengths (for the mean).
    pub cp_sum: u64,
    /// Smallest window CP seen.
    pub cp_min: u64,
    /// Largest window CP seen.
    pub cp_max: u64,
}

impl WindowStats {
    /// Mean critical-path length per window (`windowAverages.txt` in the
    /// paper's artifact).
    pub fn mean_cp(&self) -> f64 {
        self.cp_sum as f64 / self.windows.max(1) as f64
    }

    /// Mean ILP available within the window (Figure 2's y-axis).
    pub fn mean_ilp(&self) -> f64 {
        self.size as f64 / self.mean_cp().max(1.0)
    }
}

struct PerSize {
    size: usize,
    until_next: usize,
    windows: u64,
    cp_sum: u64,
    cp_min: u64,
    cp_max: u64,
}

/// Single-pass windowed-CP analyzer for a set of window sizes.
pub struct WindowedCp {
    ring: VecDeque<RetiredInst>,
    max_size: usize,
    sizes: Vec<PerSize>,
    // Reused scratch state for the per-window CP computation.
    reg_chain: [u64; NUM_REG_SLOTS],
    reg_epoch: [u64; NUM_REG_SLOTS],
    epoch: u64,
    mem_chain: WordMap<u64>,
}

impl WindowedCp {
    /// Analyzer over the paper's window sizes.
    pub fn paper() -> Self {
        Self::new(&PAPER_WINDOW_SIZES)
    }

    /// Analyzer over custom window sizes.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty());
        let max_size = *sizes.iter().max().unwrap();
        WindowedCp {
            ring: VecDeque::with_capacity(max_size + 1),
            max_size,
            sizes: sizes
                .iter()
                .map(|&size| {
                    assert!(size >= 2, "window size must be at least 2");
                    PerSize {
                        size,
                        until_next: size,
                        windows: 0,
                        cp_sum: 0,
                        cp_min: u64::MAX,
                        cp_max: 0,
                    }
                })
                .collect(),
            reg_chain: [0; NUM_REG_SLOTS],
            reg_epoch: [0; NUM_REG_SLOTS],
            epoch: 0,
            mem_chain: WordMap::default(),
        }
    }

    /// Unit-cost CP over the most recent `size` records in the ring.
    fn window_cp(&mut self, size: usize) -> u64 {
        self.epoch += 1;
        self.mem_chain.clear();
        let mut longest = 0u64;
        let start = self.ring.len() - size;
        for i in start..self.ring.len() {
            let ri = &self.ring[i];
            let mut longest_src = 0u64;
            for r in ri.srcs.iter() {
                let idx = r.index();
                if self.reg_epoch[idx] == self.epoch {
                    longest_src = longest_src.max(self.reg_chain[idx]);
                }
            }
            for a in ri.mem_reads.iter() {
                let first = a.addr >> 3;
                let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
                for w in first..=last {
                    if let Some(&c) = self.mem_chain.get(&w) {
                        longest_src = longest_src.max(c);
                    }
                }
            }
            let depth = longest_src + 1;
            for r in ri.dsts.iter() {
                let idx = r.index();
                self.reg_chain[idx] = depth;
                self.reg_epoch[idx] = self.epoch;
            }
            for a in ri.mem_writes.iter() {
                let first = a.addr >> 3;
                let last = (a.addr + a.size.max(1) as u64 - 1) >> 3;
                for w in first..=last {
                    self.mem_chain.insert(w, depth);
                }
            }
            longest = longest.max(depth);
        }
        longest
    }

    /// Pump an entire retirement source (live run, replayed trace, or
    /// record slice) through this analysis.
    pub fn consume(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs: [&mut dyn Observer; 1] = [self];
        source.drive(&mut obs)
    }

    /// Per-size statistics, in the order sizes were supplied.
    pub fn stats(&self) -> Vec<WindowStats> {
        self.sizes
            .iter()
            .map(|s| WindowStats {
                size: s.size,
                windows: s.windows,
                cp_sum: s.cp_sum,
                cp_min: if s.windows == 0 { 0 } else { s.cp_min },
                cp_max: s.cp_max,
            })
            .collect()
    }
}

impl Observer for WindowedCp {
    fn on_retire(&mut self, ri: &RetiredInst) {
        if self.ring.len() == self.max_size {
            self.ring.pop_front();
        }
        self.ring.push_back(*ri);

        for i in 0..self.sizes.len() {
            self.sizes[i].until_next -= 1;
            if self.sizes[i].until_next == 0 {
                let size = self.sizes[i].size;
                if self.ring.len() >= size {
                    let cp = self.window_cp(size);
                    let s = &mut self.sizes[i];
                    s.windows += 1;
                    s.cp_sum += cp;
                    s.cp_min = s.cp_min.min(cp);
                    s.cp_max = s.cp_max.max(cp);
                    s.until_next = size / 2; // 50 % slide
                } else {
                    self.sizes[i].until_next = 1; // not enough history yet
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{InstGroup, RegId, RegSet};

    fn serial() -> RetiredInst {
        let mut ri = RetiredInst::new(0, InstGroup::IntAlu);
        ri.srcs = RegSet::of(&[RegId::Int(1)]);
        ri.dsts = RegSet::of(&[RegId::Int(1)]);
        ri
    }

    fn parallel(i: u8) -> RetiredInst {
        let mut ri = RetiredInst::new(0, InstGroup::IntAlu);
        ri.dsts = RegSet::of(&[RegId::Int(i % 30)]);
        ri
    }

    #[test]
    fn serial_stream_cp_equals_window() {
        let mut w = WindowedCp::new(&[4, 8]);
        for _ in 0..64 {
            w.on_retire(&serial());
        }
        for s in w.stats() {
            assert_eq!(s.mean_cp(), s.size as f64, "fully serial: CP == window size");
            assert!((s.mean_ilp() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_stream_cp_is_one() {
        let mut w = WindowedCp::new(&[4, 16]);
        for i in 0..128u8 {
            w.on_retire(&parallel(i));
        }
        // Writers never read: every window's CP is 1.
        for s in w.stats() {
            assert_eq!(s.cp_min, 1);
            assert_eq!(s.cp_max, 1);
            assert_eq!(s.mean_ilp(), s.size as f64);
        }
    }

    #[test]
    fn window_count_matches_slide() {
        let mut w = WindowedCp::new(&[4]);
        for _ in 0..12 {
            w.on_retire(&serial());
        }
        // First window after 4, then every 2: retirements 4,6,8,10,12 -> 5.
        assert_eq!(w.stats()[0].windows, 5);
    }

    #[test]
    fn window_cp_bounded_by_size() {
        let mut w = WindowedCp::new(&[4, 16, 64]);
        // Mixed stream.
        for i in 0..500u32 {
            if i % 3 == 0 {
                w.on_retire(&serial());
            } else {
                w.on_retire(&parallel(i as u8));
            }
        }
        for s in w.stats() {
            assert!(s.cp_max as usize <= s.size);
            assert!(s.cp_min >= 1);
            assert!(s.mean_ilp() >= 1.0);
        }
    }

    #[test]
    fn chains_reset_between_windows() {
        // The serial register chain must not leak CP across window
        // evaluations (epoch tagging).
        let mut w = WindowedCp::new(&[4]);
        for _ in 0..8 {
            w.on_retire(&serial());
        }
        let s = &w.stats()[0];
        assert_eq!(s.cp_max, 4, "window CP can never exceed the window size");
    }
}
