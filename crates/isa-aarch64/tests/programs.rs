//! End-to-end guest programs exercising A64 instruction classes the
//! workloads use lightly: conditional selects, bitfield aliases, pair
//! loads/stores, widening multiplies and call/return control flow.

use isa_aarch64::{
    A64Asm, AArch64Executor, BitfieldOp, Cond, CselOp, IndexMode, Inst, MemSize, ShiftType,
};
use simcore::{CpuState, EmulationCore, Program};

fn run(program: &Program) -> CpuState {
    let mut st = CpuState::new();
    program.load(&mut st).unwrap();
    EmulationCore::new(AArch64Executor::new()).run(&mut st, &mut []).unwrap();
    st
}

#[test]
fn abs_via_csneg() {
    // |x| = csneg(x, x, ge) after cmp x, #0 — the classic branchless abs.
    for (input, expect) in [(-17i64, 17u64), (23, 23), (0, 0)] {
        let mut a = A64Asm::new(0x1_0000, 0x10_0000);
        let out = a.data_zero(8, 8);
        a.mov_imm(1, input as u64);
        a.cmp_imm(1, 0);
        a.push(Inst::CondSel { op: CselOp::Csneg, sf: true, rd: 2, rn: 1, rm: 1, cond: Cond::Ge });
        a.la(3, out);
        a.str_imm(2, 3, 0);
        a.exit(0);
        let st = run(&a.finish());
        assert_eq!(st.mem.read_u64(out).unwrap(), expect, "abs({input})");
    }
}

#[test]
fn gcd_with_flags_and_csel() {
    // Euclid with udiv/msub remainder (A64 has no rem instruction).
    let mut a = A64Asm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(8, 8);
    a.mov_imm(1, 1071);
    a.mov_imm(2, 462);
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.cbz(2, done);
    a.push(Inst::Div { unsigned: true, sf: true, rd: 3, rn: 1, rm: 2 });
    a.push(Inst::MulAdd { sub: true, sf: true, rd: 4, rn: 3, rm: 2, ra: 1 }); // r = a - q*b
    a.mov(1, 2);
    a.mov(2, 4);
    a.b(loop_top);
    a.bind(done);
    a.la(5, out);
    a.str_imm(1, 5, 0);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 21);
}

#[test]
fn stack_frames_with_stp_ldp() {
    // A call that saves/restores a frame with stp/ldp pre/post-indexing.
    let mut a = A64Asm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(8, 8);
    let func = a.new_label();
    let start = a.new_label();
    a.b(start);
    a.bind(func);
    // push {x19, x30}; clobber x19; pop; ret
    a.push(Inst::Stp {
        sf: true,
        mode: Some(IndexMode::Pre),
        rt: 19,
        rt2: 30,
        rn: 31,
        imm7: -2,
    });
    a.mov_imm(19, 0xDEAD);
    a.add_imm(0, 0, 5);
    a.push(Inst::Ldp {
        sf: true,
        mode: Some(IndexMode::Post),
        rt: 19,
        rt2: 30,
        rn: 31,
        imm7: 2,
    });
    a.ret();
    a.bind(start);
    a.set_entry_here();
    a.mov_imm(19, 7); // callee-saved value that must survive
    a.mov_imm(0, 10);
    a.bl(func);
    a.add(1, 0, 19); // 15 + 7... x0=15, x19=7 -> 22
    a.la(2, out);
    a.str_imm(1, 2, 0);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 22);
}

#[test]
fn bitfield_pack_unpack() {
    // Pack two 16-bit values with bfm/lsl, unpack with ubfx, verify.
    let mut a = A64Asm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(16, 8);
    a.mov_imm(1, 0xBEEF);
    a.mov_imm(2, 0xCAFE);
    a.lsl_imm(3, 2, 16);
    a.push(Inst::LogicalShifted {
        op: isa_aarch64::LogicOp::Orr,
        sf: true,
        rd: 3,
        rn: 3,
        rm: 1,
        shift: ShiftType::Lsl,
        amount: 0,
    });
    // ubfx x4, x3, #16, #16
    a.push(Inst::Bitfield { op: BitfieldOp::Ubfm, sf: true, rd: 4, rn: 3, immr: 16, imms: 31 });
    // uxth x5, w3
    a.push(Inst::Bitfield { op: BitfieldOp::Ubfm, sf: false, rd: 5, rn: 3, immr: 0, imms: 15 });
    a.la(6, out);
    a.str_imm(4, 6, 0);
    a.str_imm(5, 6, 8);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 0xCAFE);
    assert_eq!(st.mem.read_u64(out + 8).unwrap(), 0xBEEF);
}

#[test]
fn widening_dot_product() {
    // smull-style dot product of two small i32 vectors via MulAddLong.
    let xs: [i32; 4] = [3, -4, 5, -6];
    let ys: [i32; 4] = [7, 8, -9, 10];
    let expect: i64 = xs.iter().zip(ys.iter()).map(|(&x, &y)| x as i64 * y as i64).sum();
    let mut a = A64Asm::new(0x1_0000, 0x10_0000);
    let xa = a.data_bytes(&xs.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<_>>());
    let ya = a.data_bytes(&ys.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<_>>());
    let out = a.data_zero(8, 8);
    a.la(1, xa);
    a.la(2, ya);
    a.mov_imm(3, 0); // acc
    a.mov_imm(4, 0); // i
    let loop_top = a.new_label();
    a.bind(loop_top);
    a.push(Inst::LdrReg {
        size: MemSize::Sw,
        rt: 5,
        rn: 1,
        rm: 4,
        extend: isa_aarch64::Extend::Uxtx,
        shift: false,
    });
    a.push(Inst::LdrReg {
        size: MemSize::Sw,
        rt: 6,
        rn: 2,
        rm: 4,
        extend: isa_aarch64::Extend::Uxtx,
        shift: false,
    });
    a.push(Inst::MulAddLong { sub: false, unsigned: false, rd: 3, rn: 5, rm: 6, ra: 3 });
    a.add_imm(4, 4, 4);
    a.cmp_imm(4, 16);
    a.b_ne(loop_top);
    a.la(7, out);
    a.str_imm(3, 7, 0);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap() as i64, expect);
}

#[test]
fn ccmp_range_check() {
    // Branchless range check: in_range = (lo <= x) && (x <= hi), via
    // cmp + ccmp + cset — the A64 idiom for fused conditions.
    for (x, expect) in [(5u64, 1u64), (0, 0), (15, 0), (10, 1), (1, 1)] {
        let mut a = A64Asm::new(0x1_0000, 0x10_0000);
        let out = a.data_zero(8, 8);
        a.mov_imm(1, x);
        // cmp x1, #1 ; ccmp x1, #10, #0b0010, hs ; "cset ls"
        // The fallback NZCV (C=1, Z=0) makes HI hold, so the final LS test
        // fails when x < 1 — the standard fused range-check idiom.
        a.cmp_imm(1, 1);
        a.push(Inst::CondCmpImm {
            negative: false,
            sf: true,
            rn: 1,
            imm5: 10,
            nzcv: 0b0010,
            cond: Cond::Cs,
        });
        a.push(Inst::CondSel { op: CselOp::Csinc, sf: true, rd: 2, rn: 31, rm: 31, cond: Cond::Hi });
        a.la(3, out);
        a.str_imm(2, 3, 0);
        a.exit(0);
        let st = run(&a.finish());
        assert_eq!(st.mem.read_u64(out).unwrap(), expect, "range check of {x}");
    }
}

#[test]
fn tbz_bit_scan() {
    // Count trailing zero bits of 0b101000 by looping with tbz on bit 0
    // and shifting right: expect 3.
    let mut a = A64Asm::new(0x1_0000, 0x10_0000);
    let out = a.data_zero(8, 8);
    a.mov_imm(1, 0b101000);
    a.mov_imm(2, 0); // count
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    let bit_clear = a.new_label();
    a.tbz(1, 0, bit_clear);
    a.b(done);
    a.bind(bit_clear);
    a.add_imm(2, 2, 1);
    a.lsr_imm(1, 1, 1);
    a.b(loop_top);
    a.bind(done);
    a.la(3, out);
    a.str_imm(2, 3, 0);
    a.exit(0);
    let st = run(&a.finish());
    assert_eq!(st.mem.read_u64(out).unwrap(), 3);
}
