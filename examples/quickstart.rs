//! Quickstart: build one workload, run it on both ISAs, print the paper's
//! headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use isacmp::{run_cell, IsaKind, Personality, SizeClass, Workload};

fn main() {
    let size = SizeClass::Small;
    println!("STREAM at {size:?} size, GCC 12.2 personality\n");
    println!(
        "{:<10} {:>14} {:>12} {:>8} {:>16}",
        "ISA", "path length", "CP", "ILP", "2GHz runtime"
    );
    for isa in [IsaKind::AArch64, IsaKind::RiscV] {
        let cell = run_cell(Workload::Stream, isa, &Personality::gcc122(), size)
            .expect("cell measures");
        println!(
            "{:<10} {:>14} {:>12} {:>8.0} {:>13.3} ms",
            cell.isa,
            cell.path_length,
            cell.critical_path,
            cell.ilp(),
            cell.runtime_ms()
        );
    }
}
