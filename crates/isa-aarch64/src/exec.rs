//! Functional execution of A64 instructions.
//!
//! Register 31 resolves to SP or ZR per the architectural rules of each
//! instruction class. ZR reads/writes are omitted from the retirement
//! record's source/destination sets (breaking dependency chains exactly as
//! the paper's critical-path method requires); SP is reported as `Int(31)`.
//! The NZCV flags are reported as the [`RegId::Flags`] slot, so `cmp` ->
//! `b.ne` sequences form two-instruction dependency chains.

use std::cell::RefCell;
use std::rc::Rc;

use simcore::phase::{self, Phase};
use simcore::{CpuState, InstGroup, IsaExecutor, RegId, RetiredInst, SimError, WordMap};

use crate::decode::decode;
use crate::encode::fp_imm8_to_f64;
use crate::inst::*;

/// Longest straight-line run pre-decoded into one block. Bounds both the
/// work a single cache miss performs and how far past a hot loop's entry
/// the builder speculatively decodes.
const MAX_BLOCK_LEN: usize = 64;

/// A pre-decoded basic block: the straight-line instruction run starting
/// at `start`, ending at the first control-flow terminator (or the length
/// cap / first undecodable word, whichever comes sooner). Instruction `i`
/// sits at `start + 4*i`; only the final instruction can redirect the PC,
/// so execution inside a block is purely sequential.
struct Block {
    start: u64,
    insts: Vec<Inst>,
}

/// Whether `inst` ends a basic block: anything that can change control
/// flow (or end the run) — branches, register jumps, and the trap
/// instructions.
fn ends_block(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::B { .. }
            | Inst::BCond { .. }
            | Inst::Cbz { .. }
            | Inst::Tbz { .. }
            | Inst::BrReg { .. }
            | Inst::Svc { .. }
            | Inst::Brk { .. }
    )
}

/// AArch64 executor with a per-instance decode cache and a pre-decoded
/// basic-block cache (used by the core's block engine).
#[derive(Default)]
pub struct AArch64Executor {
    cache: RefCell<WordMap<Inst>>,
    blocks: RefCell<WordMap<Rc<Block>>>,
}

impl AArch64Executor {
    /// Create a fresh executor.
    pub fn new() -> Self {
        AArch64Executor::default()
    }

    /// Look up (or build and cache) the block starting at `pc`. `None`
    /// when no block can start there — misaligned PC, unreadable or
    /// undecodable first word — in which case the per-instruction path
    /// must produce the exact fault. Build failures are never cached:
    /// memory may be remapped or repaired before the PC is reached again.
    fn block_at(&self, state: &CpuState, pc: u64) -> Option<Rc<Block>> {
        if pc & 3 != 0 {
            return None;
        }
        if let Some(b) = self.blocks.borrow().get(&pc) {
            return Some(Rc::clone(b));
        }
        let mut insts = Vec::new();
        let mut cur = pc;
        loop {
            let word = {
                let _t = phase::scoped(Phase::Fetch);
                match state.mem.read_u32(cur) {
                    Ok(w) => w,
                    Err(_) => break,
                }
            };
            let inst = {
                let _t = phase::scoped(Phase::Decode);
                match decode(word) {
                    Ok(i) => i,
                    Err(_) => break,
                }
            };
            let done = ends_block(&inst);
            insts.push(inst);
            if done || insts.len() == MAX_BLOCK_LEN {
                break;
            }
            cur = cur.wrapping_add(4);
        }
        if insts.is_empty() {
            return None;
        }
        let b = Rc::new(Block { start: pc, insts });
        self.blocks.borrow_mut().insert(pc, Rc::clone(&b));
        Some(b)
    }
}

struct Retire {
    ri: RetiredInst,
}

impl Retire {
    fn new(pc: u64, group: InstGroup) -> Self {
        Retire { ri: RetiredInst::new(pc, group) }
    }

    /// Source general register, 31 = ZR (omitted).
    #[inline]
    fn src_zr(&mut self, r: u8) {
        if r != 31 {
            self.ri.srcs.insert(RegId::Int(r));
        }
    }

    /// Source general register, 31 = SP (reported).
    #[inline]
    fn src_sp(&mut self, r: u8) {
        self.ri.srcs.insert(RegId::Int(r));
    }

    /// Destination general register, 31 = ZR (omitted).
    #[inline]
    fn dst_zr(&mut self, r: u8) {
        if r != 31 {
            self.ri.dsts.insert(RegId::Int(r));
        }
    }

    /// Destination general register, 31 = SP (reported).
    #[inline]
    fn dst_sp(&mut self, r: u8) {
        self.ri.dsts.insert(RegId::Int(r));
    }

    #[inline]
    fn src_fp(&mut self, r: u8) {
        self.ri.srcs.insert(RegId::Fp(r));
    }

    #[inline]
    fn dst_fp(&mut self, r: u8) {
        self.ri.dsts.insert(RegId::Fp(r));
    }

    #[inline]
    fn src_flags(&mut self) {
        self.ri.srcs.insert(RegId::Flags);
    }

    #[inline]
    fn dst_flags(&mut self) {
        self.ri.dsts.insert(RegId::Flags);
    }
}

/// Read register with 31 = ZR.
#[inline]
fn rz(state: &CpuState, r: u8) -> u64 {
    if r == 31 {
        0
    } else {
        state.x[r as usize]
    }
}

/// Read register with 31 = SP.
#[inline]
fn rsp(state: &CpuState, r: u8) -> u64 {
    state.x[r as usize]
}

/// Write register with 31 = ZR (discard).
#[inline]
fn wz(state: &mut CpuState, r: u8, v: u64) {
    if r != 31 {
        state.x[r as usize] = v;
    }
}

/// Write register with 31 = SP.
#[inline]
fn wsp(state: &mut CpuState, r: u8, v: u64) {
    state.x[r as usize] = v;
}

/// Narrow to the operand size and zero-extend.
#[inline]
fn narrow(sf: bool, v: u64) -> u64 {
    if sf {
        v
    } else {
        v & 0xFFFF_FFFF
    }
}

const N: u8 = 0b1000;
const Z: u8 = 0b0100;
const C: u8 = 0b0010;
const V: u8 = 0b0001;

/// `a + b + carry_in`, returning (result, nzcv).
fn add_with_carry(sf: bool, a: u64, b: u64, carry_in: bool) -> (u64, u8) {
    if sf {
        let (r1, c1) = a.overflowing_add(b);
        let (result, c2) = r1.overflowing_add(carry_in as u64);
        let carry = c1 || c2;
        let sa = (a as i64) < 0;
        let sb = (b as i64) < 0;
        let sr = (result as i64) < 0;
        let overflow = (sa == sb) && (sr != sa);
        let mut f = 0u8;
        if sr {
            f |= N;
        }
        if result == 0 {
            f |= Z;
        }
        if carry {
            f |= C;
        }
        if overflow {
            f |= V;
        }
        (result, f)
    } else {
        let a = a as u32;
        let b = b as u32;
        let (r1, c1) = a.overflowing_add(b);
        let (result, c2) = r1.overflowing_add(carry_in as u32);
        let carry = c1 || c2;
        let sa = (a as i32) < 0;
        let sb = (b as i32) < 0;
        let sr = (result as i32) < 0;
        let overflow = (sa == sb) && (sr != sa);
        let mut f = 0u8;
        if sr {
            f |= N;
        }
        if result == 0 {
            f |= Z;
        }
        if carry {
            f |= C;
        }
        if overflow {
            f |= V;
        }
        (result as u64, f)
    }
}

/// Evaluate a condition against the packed NZCV flags.
// Boolean forms deliberately mirror the Arm ARM's ConditionHolds pseudocode.
#[allow(clippy::nonminimal_bool)]
pub fn cond_holds(cond: Cond, nzcv: u8) -> bool {
    let n = nzcv & N != 0;
    let z = nzcv & Z != 0;
    let c = nzcv & C != 0;
    let v = nzcv & V != 0;
    match cond {
        Cond::Eq => z,
        Cond::Ne => !z,
        Cond::Cs => c,
        Cond::Cc => !c,
        Cond::Mi => n,
        Cond::Pl => !n,
        Cond::Vs => v,
        Cond::Vc => !v,
        Cond::Hi => c && !z,
        Cond::Ls => !(c && !z),
        Cond::Ge => n == v,
        Cond::Lt => n != v,
        Cond::Gt => !z && n == v,
        Cond::Le => !(!z && n == v),
        Cond::Al | Cond::Nv => true,
    }
}

fn apply_shift(sf: bool, v: u64, shift: ShiftType, amount: u8) -> u64 {
    let v = narrow(sf, v);
    let bits: u32 = if sf { 64 } else { 32 };
    let amt = amount as u32 % bits;
    let r = match shift {
        ShiftType::Lsl => v.wrapping_shl(amt),
        ShiftType::Lsr => v.wrapping_shr(amt),
        ShiftType::Asr => {
            if sf {
                ((v as i64) >> amt) as u64
            } else {
                (((v as u32) as i32) >> amt) as u32 as u64
            }
        }
        ShiftType::Ror => {
            if amt == 0 {
                v
            } else if sf {
                v.rotate_right(amt)
            } else {
                (v as u32).rotate_right(amt) as u64
            }
        }
    };
    narrow(sf, r)
}

fn apply_extend(v: u64, extend: Extend, amount: u8) -> u64 {
    let base = match extend {
        Extend::Uxtb => v & 0xFF,
        Extend::Uxth => v & 0xFFFF,
        Extend::Uxtw => v & 0xFFFF_FFFF,
        Extend::Uxtx => v,
        Extend::Sxtb => v as u8 as i8 as i64 as u64,
        Extend::Sxth => v as u16 as i16 as i64 as u64,
        Extend::Sxtw => v as u32 as i32 as i64 as u64,
        Extend::Sxtx => v,
    };
    base.wrapping_shl(amount as u32)
}

/// ROR within `bits`.
fn ror_bits(v: u64, r: u32, bits: u32) -> u64 {
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let v = v & mask;
    if r == 0 {
        v
    } else {
        ((v >> r) | (v << (bits - r))) & mask
    }
}

impl IsaExecutor for AArch64Executor {
    fn step(&self, state: &mut CpuState) -> Result<RetiredInst, SimError> {
        let pc = state.pc;
        if pc & 3 != 0 {
            return Err(SimError::MisalignedPc { pc });
        }
        // Phase scopes are kept disjoint so the breakdown never
        // double-counts: the cache lookup and decode are Decode, the
        // cache-miss word read is Fetch, execution is Execute.
        let cached = {
            let _t = phase::scoped(Phase::Decode);
            self.cache.borrow_mut().get(&pc).copied()
        };
        let inst = match cached {
            Some(i) => i,
            None => {
                let word = {
                    let _t = phase::scoped(Phase::Fetch);
                    state.mem.read_u32(pc)?
                };
                let _t = phase::scoped(Phase::Decode);
                let i = decode(word).map_err(|e| SimError::Decode { pc, word, msg: e.msg })?;
                self.cache.borrow_mut().insert(pc, i);
                i
            }
        };
        let _t = phase::scoped(Phase::Execute);
        execute(&inst, pc, state)
    }

    fn disassemble(&self, word: u32) -> String {
        match decode(word) {
            Ok(i) => crate::disasm::disassemble(&i),
            Err(e) => format!(".inst {word:#010x} ; {e}"),
        }
    }

    fn name(&self) -> &'static str {
        "aarch64"
    }

    fn flush_decode_cache(&self) {
        self.cache.borrow_mut().clear();
        self.blocks.borrow_mut().clear();
    }

    fn supports_blocks(&self) -> bool {
        true
    }

    fn run_block(
        &self,
        state: &mut CpuState,
        fuel: u64,
        mut sink: Option<&mut dyn FnMut(&RetiredInst)>,
    ) -> (u64, Option<SimError>) {
        let mut done = 0u64;
        while done < fuel && state.exited.is_none() {
            let block = match self.block_at(state, state.pc) {
                Some(b) => b,
                None => {
                    // No block can start here; the per-instruction path
                    // raises the exact architectural fault (misaligned PC,
                    // unmapped fetch, undecodable word).
                    match self.step(state) {
                        Ok(ri) => {
                            done += 1;
                            if let Some(s) = sink.as_mut() {
                                s(&ri);
                            }
                            continue;
                        }
                        Err(e) => return (done, Some(e)),
                    }
                }
            };
            // A block never straddles the fuel boundary: execute only the
            // prefix that fits, and the next call re-enters mid-block (the
            // remainder is itself a valid block keyed by its start PC).
            let take = (block.insts.len() as u64).min(fuel - done) as usize;
            for (i, inst) in block.insts[..take].iter().enumerate() {
                let ipc = block.start.wrapping_add(4 * i as u64);
                let res = {
                    let _t = phase::scoped(Phase::Execute);
                    execute(inst, ipc, state)
                };
                match res {
                    Ok(ri) => {
                        done += 1;
                        if let Some(s) = sink.as_mut() {
                            s(&ri);
                        }
                    }
                    Err(e) => return (done, Some(e)),
                }
            }
        }
        (done, None)
    }
}

/// Execute one decoded instruction at `pc`, returning its retirement record.
pub fn execute(inst: &Inst, pc: u64, state: &mut CpuState) -> Result<RetiredInst, SimError> {
    let mut r = Retire::new(pc, inst.group());
    let mut next_pc = pc.wrapping_add(4);

    use Inst::*;
    match *inst {
        AddSubImm { sub, set_flags, sf, rd, rn, imm12, shift12 } => {
            let a = narrow(sf, rsp(state, rn));
            let imm = (imm12 as u64) << if shift12 { 12 } else { 0 };
            let (result, flags) = if sub {
                add_with_carry(sf, a, narrow(sf, !imm), true)
            } else {
                add_with_carry(sf, a, imm, false)
            };
            r.src_sp(rn);
            if set_flags {
                state.nzcv = flags;
                r.dst_flags();
                wz(state, rd, result);
                r.dst_zr(rd);
            } else {
                wsp(state, rd, result);
                r.dst_sp(rd);
            }
        }
        AddSubShifted { sub, set_flags, sf, rd, rn, rm, shift, amount } => {
            let a = narrow(sf, rz(state, rn));
            let b = apply_shift(sf, rz(state, rm), shift, amount);
            let (result, flags) = if sub {
                add_with_carry(sf, a, narrow(sf, !b), true)
            } else {
                add_with_carry(sf, a, b, false)
            };
            wz(state, rd, result);
            r.src_zr(rn);
            r.src_zr(rm);
            r.dst_zr(rd);
            if set_flags {
                state.nzcv = flags;
                r.dst_flags();
            }
        }
        AddSubExtended { sub, set_flags, sf, rd, rn, rm, extend, amount } => {
            let a = narrow(sf, rsp(state, rn));
            let b = narrow(sf, apply_extend(rz(state, rm), extend, amount));
            let (result, flags) = if sub {
                add_with_carry(sf, a, narrow(sf, !b), true)
            } else {
                add_with_carry(sf, a, b, false)
            };
            r.src_sp(rn);
            r.src_zr(rm);
            if set_flags {
                state.nzcv = flags;
                r.dst_flags();
                wz(state, rd, result);
                r.dst_zr(rd);
            } else {
                wsp(state, rd, result);
                r.dst_sp(rd);
            }
        }
        LogicalImm { op, sf, rd, rn, imm } => {
            let a = narrow(sf, rz(state, rn));
            let (result, sets_flags) = match op {
                LogicOp::And => (a & imm, false),
                LogicOp::Orr => (a | imm, false),
                LogicOp::Eor => (a ^ imm, false),
                LogicOp::Ands => (a & imm, true),
                _ => unreachable!("no immediate form"),
            };
            let result = narrow(sf, result);
            r.src_zr(rn);
            if sets_flags {
                let neg = if sf { (result as i64) < 0 } else { (result as u32 as i32) < 0 };
                state.nzcv = (if neg { N } else { 0 }) | (if result == 0 { Z } else { 0 });
                r.dst_flags();
                wz(state, rd, result);
                r.dst_zr(rd);
            } else {
                wsp(state, rd, result);
                r.dst_sp(rd);
            }
        }
        LogicalShifted { op, sf, rd, rn, rm, shift, amount } => {
            let a = narrow(sf, rz(state, rn));
            let b = apply_shift(sf, rz(state, rm), shift, amount);
            let (result, sets_flags) = match op {
                LogicOp::And => (a & b, false),
                LogicOp::Bic => (a & !b, false),
                LogicOp::Orr => (a | b, false),
                LogicOp::Orn => (a | !b, false),
                LogicOp::Eor => (a ^ b, false),
                LogicOp::Eon => (a ^ !b, false),
                LogicOp::Ands => (a & b, true),
                LogicOp::Bics => (a & !b, true),
            };
            let result = narrow(sf, result);
            wz(state, rd, result);
            r.src_zr(rn);
            r.src_zr(rm);
            r.dst_zr(rd);
            if sets_flags {
                let neg = if sf { (result as i64) < 0 } else { (result as u32 as i32) < 0 };
                state.nzcv = (if neg { N } else { 0 }) | (if result == 0 { Z } else { 0 });
                r.dst_flags();
            }
        }
        MovWide { op, sf, rd, imm16, hw } => {
            let shift = 16 * hw as u32;
            let imm = (imm16 as u64) << shift;
            let result = match op {
                MovOp::Movz => imm,
                MovOp::Movn => narrow(sf, !imm),
                MovOp::Movk => {
                    r.src_zr(rd); // movk merges into the existing value
                    (rz(state, rd) & !(0xFFFFu64 << shift)) | imm
                }
            };
            wz(state, rd, narrow(sf, result));
            r.dst_zr(rd);
        }
        Adr { rd, offset } => {
            wz(state, rd, pc.wrapping_add(offset as u64));
            r.dst_zr(rd);
        }
        Adrp { rd, offset } => {
            let base = pc & !0xFFF;
            wz(state, rd, base.wrapping_add(offset as u64));
            r.dst_zr(rd);
        }
        Bitfield { op, sf, rd, rn, immr, imms } => {
            let bits: u32 = if sf { 64 } else { 32 };
            let src = narrow(sf, rz(state, rn));
            let s = imms as u32;
            let rr = immr as u32;
            let ones = |n: u32| -> u64 {
                if n >= 64 {
                    u64::MAX
                } else {
                    (1u64 << n) - 1
                }
            };
            let wmask = ror_bits(ones(s + 1), rr, bits);
            let diff = s.wrapping_sub(rr) & (bits - 1);
            let tmask = ones(diff + 1);
            let bot_src = ror_bits(src, rr, bits) & wmask;
            let result = match op {
                BitfieldOp::Ubfm => bot_src & tmask,
                BitfieldOp::Sbfm => {
                    let sign = (src >> s) & 1;
                    let top = if sign != 0 { ones(bits) } else { 0 };
                    (top & !tmask) | (bot_src & tmask)
                }
                BitfieldOp::Bfm => {
                    let dst = narrow(sf, rz(state, rd));
                    r.src_zr(rd);
                    let bot = (dst & !wmask) | bot_src;
                    (dst & !tmask) | (bot & tmask)
                }
            };
            wz(state, rd, narrow(sf, result));
            r.src_zr(rn);
            r.dst_zr(rd);
        }
        Extr { sf, rd, rn, rm, lsb } => {
            let bits: u32 = if sf { 64 } else { 32 };
            let lo = narrow(sf, rz(state, rm));
            let hi = narrow(sf, rz(state, rn));
            let result = if lsb == 0 {
                lo
            } else {
                narrow(sf, (lo >> lsb) | (hi << (bits - lsb as u32)))
            };
            wz(state, rd, result);
            r.src_zr(rn);
            r.src_zr(rm);
            r.dst_zr(rd);
        }
        MulAdd { sub, sf, rd, rn, rm, ra } => {
            let a = narrow(sf, rz(state, rn));
            let b = narrow(sf, rz(state, rm));
            let acc = narrow(sf, rz(state, ra));
            let prod = a.wrapping_mul(b);
            let result = if sub { acc.wrapping_sub(prod) } else { acc.wrapping_add(prod) };
            wz(state, rd, narrow(sf, result));
            r.src_zr(rn);
            r.src_zr(rm);
            r.src_zr(ra);
            r.dst_zr(rd);
        }
        MulAddLong { sub, unsigned, rd, rn, rm, ra } => {
            let a = rz(state, rn) as u32;
            let b = rz(state, rm) as u32;
            let prod = if unsigned {
                (a as u64).wrapping_mul(b as u64)
            } else {
                ((a as i32 as i64).wrapping_mul(b as i32 as i64)) as u64
            };
            let acc = rz(state, ra);
            let result = if sub { acc.wrapping_sub(prod) } else { acc.wrapping_add(prod) };
            wz(state, rd, result);
            r.src_zr(rn);
            r.src_zr(rm);
            r.src_zr(ra);
            r.dst_zr(rd);
        }
        MulHigh { unsigned, rd, rn, rm } => {
            let a = rz(state, rn);
            let b = rz(state, rm);
            let result = if unsigned {
                ((a as u128).wrapping_mul(b as u128) >> 64) as u64
            } else {
                ((a as i64 as i128).wrapping_mul(b as i64 as i128) >> 64) as u64
            };
            wz(state, rd, result);
            r.src_zr(rn);
            r.src_zr(rm);
            r.dst_zr(rd);
        }
        Div { unsigned, sf, rd, rn, rm } => {
            let a = narrow(sf, rz(state, rn));
            let b = narrow(sf, rz(state, rm));
            // A64 division by zero yields zero (no trap).
            let result = if b == 0 {
                0
            } else if unsigned {
                a / b
            } else if sf {
                let (a, b) = (a as i64, b as i64);
                if a == i64::MIN && b == -1 {
                    a as u64 // overflow wraps
                } else {
                    (a / b) as u64
                }
            } else {
                let (a, b) = (a as u32 as i32, b as u32 as i32);
                if a == i32::MIN && b == -1 {
                    a as u32 as u64
                } else {
                    (a / b) as u32 as u64
                }
            };
            wz(state, rd, narrow(sf, result));
            r.src_zr(rn);
            r.src_zr(rm);
            r.dst_zr(rd);
        }
        ShiftV { op, sf, rd, rn, rm } => {
            let bits: u32 = if sf { 64 } else { 32 };
            let amt = (rz(state, rm) % bits as u64) as u8;
            let st = match op {
                ShiftVOp::Lslv => ShiftType::Lsl,
                ShiftVOp::Lsrv => ShiftType::Lsr,
                ShiftVOp::Asrv => ShiftType::Asr,
                ShiftVOp::Rorv => ShiftType::Ror,
            };
            let result = apply_shift(sf, rz(state, rn), st, amt);
            wz(state, rd, result);
            r.src_zr(rn);
            r.src_zr(rm);
            r.dst_zr(rd);
        }
        Unary1 { op, sf, rd, rn } => {
            let v = narrow(sf, rz(state, rn));
            let result = match (op, sf) {
                (Unary1Op::Rbit, true) => v.reverse_bits(),
                (Unary1Op::Rbit, false) => (v as u32).reverse_bits() as u64,
                (Unary1Op::Rev, true) => v.swap_bytes(),
                (Unary1Op::Rev, false) => (v as u32).swap_bytes() as u64,
                (Unary1Op::Rev16, true) => {
                    let mut out = 0u64;
                    for i in 0..4 {
                        let h = (v >> (16 * i)) as u16;
                        out |= (h.swap_bytes() as u64) << (16 * i);
                    }
                    out
                }
                (Unary1Op::Rev16, false) => {
                    let lo = (v as u16).swap_bytes() as u64;
                    let hi = ((v >> 16) as u16).swap_bytes() as u64;
                    (hi << 16) | lo
                }
                (Unary1Op::Rev32, _) => {
                    let lo = (v as u32).swap_bytes() as u64;
                    let hi = ((v >> 32) as u32).swap_bytes() as u64;
                    (hi << 32) | lo
                }
                (Unary1Op::Clz, true) => v.leading_zeros() as u64,
                (Unary1Op::Clz, false) => (v as u32).leading_zeros() as u64,
                (Unary1Op::Cls, true) => ((v as i64).leading_zeros_of_sign()) as u64,
                (Unary1Op::Cls, false) => ((v as u32 as i32).leading_zeros_of_sign32()) as u64,
            };
            wz(state, rd, narrow(sf, result));
            r.src_zr(rn);
            r.dst_zr(rd);
        }
        CondSel { op, sf, rd, rn, rm, cond } => {
            let result = if cond_holds(cond, state.nzcv) {
                narrow(sf, rz(state, rn))
            } else {
                let m = narrow(sf, rz(state, rm));
                match op {
                    CselOp::Csel => m,
                    CselOp::Csinc => narrow(sf, m.wrapping_add(1)),
                    CselOp::Csinv => narrow(sf, !m),
                    CselOp::Csneg => narrow(sf, m.wrapping_neg()),
                }
            };
            wz(state, rd, result);
            r.src_zr(rn);
            r.src_zr(rm);
            r.src_flags();
            r.dst_zr(rd);
        }
        CondCmpReg { negative, sf, rn, rm, nzcv, cond } => {
            if cond_holds(cond, state.nzcv) {
                let a = narrow(sf, rz(state, rn));
                let b = narrow(sf, rz(state, rm));
                let (_, flags) = if negative {
                    add_with_carry(sf, a, b, false)
                } else {
                    add_with_carry(sf, a, narrow(sf, !b), true)
                };
                state.nzcv = flags;
            } else {
                state.nzcv = nzcv;
            }
            r.src_zr(rn);
            r.src_zr(rm);
            r.src_flags();
            r.dst_flags();
        }
        CondCmpImm { negative, sf, rn, imm5, nzcv, cond } => {
            if cond_holds(cond, state.nzcv) {
                let a = narrow(sf, rz(state, rn));
                let b = imm5 as u64;
                let (_, flags) = if negative {
                    add_with_carry(sf, a, b, false)
                } else {
                    add_with_carry(sf, a, narrow(sf, !b), true)
                };
                state.nzcv = flags;
            } else {
                state.nzcv = nzcv;
            }
            r.src_zr(rn);
            r.src_flags();
            r.dst_flags();
        }
        B { link, offset } => {
            if link {
                state.x[30] = pc.wrapping_add(4);
                r.dst_zr(30);
            }
            next_pc = pc.wrapping_add(offset as u64);
            r.ri.is_branch = true;
            r.ri.taken = true;
        }
        BCond { cond, offset } => {
            let taken = cond_holds(cond, state.nzcv);
            if taken {
                next_pc = pc.wrapping_add(offset as u64);
            }
            r.src_flags();
            r.ri.is_branch = true;
            r.ri.taken = taken;
        }
        Cbz { nonzero, sf, rt, offset } => {
            let v = narrow(sf, rz(state, rt));
            let taken = (v == 0) != nonzero;
            if taken {
                next_pc = pc.wrapping_add(offset as u64);
            }
            r.src_zr(rt);
            r.ri.is_branch = true;
            r.ri.taken = taken;
        }
        Tbz { nonzero, rt, bit, offset } => {
            let v = (rz(state, rt) >> bit) & 1;
            let taken = (v == 0) != nonzero;
            if taken {
                next_pc = pc.wrapping_add(offset as u64);
            }
            r.src_zr(rt);
            r.ri.is_branch = true;
            r.ri.taken = taken;
        }
        BrReg { link, rn, .. } => {
            let target = rz(state, rn);
            if link {
                state.x[30] = pc.wrapping_add(4);
                r.dst_zr(30);
            }
            r.src_zr(rn);
            next_pc = target;
            r.ri.is_branch = true;
            r.ri.taken = true;
        }
        LdrImm { size, rt, rn, imm12 } => {
            let addr = rsp(state, rn).wrapping_add(imm12 as u64 * size.bytes() as u64);
            let v = load_int(state, addr, size)?;
            wz(state, rt, v);
            r.src_sp(rn);
            r.dst_zr(rt);
            r.ri.mem_reads.push(addr, size.bytes());
        }
        StrImm { size, rt, rn, imm12 } => {
            let addr = rsp(state, rn).wrapping_add(imm12 as u64 * size.bytes() as u64);
            store_int(state, addr, size, rz(state, rt))?;
            r.src_sp(rn);
            r.src_zr(rt);
            r.ri.mem_writes.push(addr, size.bytes());
        }
        LdrIdx { size, mode, rt, rn, simm9 } => {
            let base = rsp(state, rn);
            let addr = match mode {
                IndexMode::Pre | IndexMode::Unscaled => base.wrapping_add(simm9 as u64),
                IndexMode::Post => base,
            };
            let v = load_int(state, addr, size)?;
            wz(state, rt, v);
            if mode != IndexMode::Unscaled {
                wsp(state, rn, base.wrapping_add(simm9 as u64));
                r.dst_sp(rn);
            }
            r.src_sp(rn);
            r.dst_zr(rt);
            r.ri.mem_reads.push(addr, size.bytes());
        }
        StrIdx { size, mode, rt, rn, simm9 } => {
            let base = rsp(state, rn);
            let addr = match mode {
                IndexMode::Pre | IndexMode::Unscaled => base.wrapping_add(simm9 as u64),
                IndexMode::Post => base,
            };
            store_int(state, addr, size, rz(state, rt))?;
            if mode != IndexMode::Unscaled {
                wsp(state, rn, base.wrapping_add(simm9 as u64));
                r.dst_sp(rn);
            }
            r.src_sp(rn);
            r.src_zr(rt);
            r.ri.mem_writes.push(addr, size.bytes());
        }
        LdrReg { size, rt, rn, rm, extend, shift } => {
            let scale = if shift { size.bytes().trailing_zeros() as u8 } else { 0 };
            let addr = rsp(state, rn).wrapping_add(apply_extend(rz(state, rm), extend, scale));
            let v = load_int(state, addr, size)?;
            wz(state, rt, v);
            r.src_sp(rn);
            r.src_zr(rm);
            r.dst_zr(rt);
            r.ri.mem_reads.push(addr, size.bytes());
        }
        StrReg { size, rt, rn, rm, extend, shift } => {
            let scale = if shift { size.bytes().trailing_zeros() as u8 } else { 0 };
            let addr = rsp(state, rn).wrapping_add(apply_extend(rz(state, rm), extend, scale));
            store_int(state, addr, size, rz(state, rt))?;
            r.src_sp(rn);
            r.src_zr(rm);
            r.src_zr(rt);
            r.ri.mem_writes.push(addr, size.bytes());
        }
        Ldp { sf, mode, rt, rt2, rn, imm7 } => {
            let scale: u64 = if sf { 8 } else { 4 };
            let base = rsp(state, rn);
            let offset = (imm7 as i64 * scale as i64) as u64;
            let addr = match mode {
                Some(IndexMode::Post) => base,
                _ => base.wrapping_add(offset),
            };
            let (v1, v2) = if sf {
                (
                    state.mem.read_u64(addr)?,
                    state.mem.read_u64(addr.wrapping_add(8))?,
                )
            } else {
                (
                    state.mem.read_u32(addr)? as u64,
                    state.mem.read_u32(addr.wrapping_add(4))? as u64,
                )
            };
            wz(state, rt, v1);
            wz(state, rt2, v2);
            if mode.is_some() {
                wsp(state, rn, base.wrapping_add(offset));
                r.dst_sp(rn);
            }
            r.src_sp(rn);
            r.dst_zr(rt);
            r.dst_zr(rt2);
            r.ri.mem_reads.push(addr, (2 * scale) as u8);
        }
        Stp { sf, mode, rt, rt2, rn, imm7 } => {
            let scale: u64 = if sf { 8 } else { 4 };
            let base = rsp(state, rn);
            let offset = (imm7 as i64 * scale as i64) as u64;
            let addr = match mode {
                Some(IndexMode::Post) => base,
                _ => base.wrapping_add(offset),
            };
            if sf {
                state.mem.write_u64(addr, rz(state, rt))?;
                state.mem.write_u64(addr.wrapping_add(8), rz(state, rt2))?;
            } else {
                state.mem.write_u32(addr, rz(state, rt) as u32)?;
                state.mem.write_u32(addr.wrapping_add(4), rz(state, rt2) as u32)?;
            }
            if mode.is_some() {
                wsp(state, rn, base.wrapping_add(offset));
                r.dst_sp(rn);
            }
            r.src_sp(rn);
            r.src_zr(rt);
            r.src_zr(rt2);
            r.ri.mem_writes.push(addr, (2 * scale) as u8);
        }
        LdrFpImm { size, rt, rn, imm12 } => {
            let addr = rsp(state, rn).wrapping_add(imm12 as u64 * size.bytes() as u64);
            load_fp(state, addr, size, rt)?;
            r.src_sp(rn);
            r.dst_fp(rt);
            r.ri.mem_reads.push(addr, size.bytes());
        }
        StrFpImm { size, rt, rn, imm12 } => {
            let addr = rsp(state, rn).wrapping_add(imm12 as u64 * size.bytes() as u64);
            store_fp(state, addr, size, rt)?;
            r.src_sp(rn);
            r.src_fp(rt);
            r.ri.mem_writes.push(addr, size.bytes());
        }
        LdrFpIdx { size, mode, rt, rn, simm9 } => {
            let base = rsp(state, rn);
            let addr = match mode {
                IndexMode::Pre | IndexMode::Unscaled => base.wrapping_add(simm9 as u64),
                IndexMode::Post => base,
            };
            load_fp(state, addr, size, rt)?;
            if mode != IndexMode::Unscaled {
                wsp(state, rn, base.wrapping_add(simm9 as u64));
                r.dst_sp(rn);
            }
            r.src_sp(rn);
            r.dst_fp(rt);
            r.ri.mem_reads.push(addr, size.bytes());
        }
        StrFpIdx { size, mode, rt, rn, simm9 } => {
            let base = rsp(state, rn);
            let addr = match mode {
                IndexMode::Pre | IndexMode::Unscaled => base.wrapping_add(simm9 as u64),
                IndexMode::Post => base,
            };
            store_fp(state, addr, size, rt)?;
            if mode != IndexMode::Unscaled {
                wsp(state, rn, base.wrapping_add(simm9 as u64));
                r.dst_sp(rn);
            }
            r.src_sp(rn);
            r.src_fp(rt);
            r.ri.mem_writes.push(addr, size.bytes());
        }
        LdrFpReg { size, rt, rn, rm, extend, shift } => {
            let scale = if shift { size.bytes().trailing_zeros() as u8 } else { 0 };
            let addr = rsp(state, rn).wrapping_add(apply_extend(rz(state, rm), extend, scale));
            load_fp(state, addr, size, rt)?;
            r.src_sp(rn);
            r.src_zr(rm);
            r.dst_fp(rt);
            r.ri.mem_reads.push(addr, size.bytes());
        }
        StrFpReg { size, rt, rn, rm, extend, shift } => {
            let scale = if shift { size.bytes().trailing_zeros() as u8 } else { 0 };
            let addr = rsp(state, rn).wrapping_add(apply_extend(rz(state, rm), extend, scale));
            store_fp(state, addr, size, rt)?;
            r.src_sp(rn);
            r.src_zr(rm);
            r.src_fp(rt);
            r.ri.mem_writes.push(addr, size.bytes());
        }
        FpBin { op, size, rd, rn, rm } => {
            let a = read_fp(state, rn, size);
            let b = read_fp(state, rm, size);
            let v = match op {
                FpBinOp::Fadd => a + b,
                FpBinOp::Fsub => a - b,
                FpBinOp::Fmul => a * b,
                FpBinOp::Fdiv => a / b,
                FpBinOp::Fnmul => -(a * b),
                FpBinOp::Fmax => {
                    if a.is_nan() || b.is_nan() {
                        f64::NAN
                    } else {
                        pick_max(a, b)
                    }
                }
                FpBinOp::Fmin => {
                    if a.is_nan() || b.is_nan() {
                        f64::NAN
                    } else {
                        pick_min(a, b)
                    }
                }
                FpBinOp::Fmaxnm => {
                    if a.is_nan() {
                        b
                    } else if b.is_nan() {
                        a
                    } else {
                        pick_max(a, b)
                    }
                }
                FpBinOp::Fminnm => {
                    if a.is_nan() {
                        b
                    } else if b.is_nan() {
                        a
                    } else {
                        pick_min(a, b)
                    }
                }
            };
            write_fp(state, rd, size, v);
            r.src_fp(rn);
            r.src_fp(rm);
            r.dst_fp(rd);
        }
        FpUn { op, size, rd, rn } => {
            let a = read_fp(state, rn, size);
            let v = match op {
                FpUnOp::Fmov => a,
                FpUnOp::Fabs => a.abs(),
                FpUnOp::Fneg => -a,
                FpUnOp::Fsqrt => a.sqrt(),
            };
            write_fp(state, rd, size, v);
            r.src_fp(rn);
            r.dst_fp(rd);
        }
        FpFma { op, size, rd, rn, rm, ra } => {
            let a = read_fp(state, rn, size);
            let b = read_fp(state, rm, size);
            let c = read_fp(state, ra, size);
            let v = match op {
                FpFmaOp::Fmadd => a.mul_add(b, c),
                FpFmaOp::Fmsub => (-a).mul_add(b, c),
                FpFmaOp::Fnmadd => (-a).mul_add(b, -c),
                FpFmaOp::Fnmsub => a.mul_add(b, -c),
            };
            write_fp(state, rd, size, v);
            r.src_fp(rn);
            r.src_fp(rm);
            r.src_fp(ra);
            r.dst_fp(rd);
        }
        Fcmp { size, rn, rm, zero } => {
            let a = read_fp(state, rn, size);
            let b = if zero { 0.0 } else { read_fp(state, rm, size) };
            state.nzcv = if a.is_nan() || b.is_nan() {
                C | V
            } else if a < b {
                N
            } else if a == b {
                Z | C
            } else {
                C
            };
            r.src_fp(rn);
            if !zero {
                r.src_fp(rm);
            }
            r.dst_flags();
        }
        Fcsel { size, rd, rn, rm, cond } => {
            let v = if cond_holds(cond, state.nzcv) {
                read_fp(state, rn, size)
            } else {
                read_fp(state, rm, size)
            };
            write_fp(state, rd, size, v);
            r.src_fp(rn);
            r.src_fp(rm);
            r.src_flags();
            r.dst_fp(rd);
        }
        FcvtPrec { to, from, rd, rn } => {
            let v = read_fp(state, rn, from);
            write_fp(state, rd, to, v);
            r.src_fp(rn);
            r.dst_fp(rd);
        }
        IntToFp { unsigned, sf, size, rd, rn } => {
            let raw = narrow(sf, rz(state, rn));
            let v = if unsigned {
                raw as f64
            } else if sf {
                raw as i64 as f64
            } else {
                raw as u32 as i32 as f64
            };
            write_fp(state, rd, size, v);
            r.src_zr(rn);
            r.dst_fp(rd);
        }
        FpToInt { unsigned, sf, size, rd, rn } => {
            let v = read_fp(state, rn, size);
            // A64 FCVTZ* saturates; NaN converts to zero.
            let result: u64 = match (unsigned, sf) {
                (false, true) => {
                    if v.is_nan() {
                        0
                    } else {
                        (v.max(i64::MIN as f64).min(i64::MAX as f64).trunc() as i64) as u64
                    }
                }
                (false, false) => {
                    if v.is_nan() {
                        0
                    } else {
                        ((v.max(i32::MIN as f64).min(i32::MAX as f64).trunc() as i32) as u32)
                            as u64
                    }
                }
                (true, true) => {
                    if v.is_nan() || v <= -1.0 {
                        0
                    } else {
                        v.min(u64::MAX as f64).trunc() as u64
                    }
                }
                (true, false) => {
                    if v.is_nan() || v <= -1.0 {
                        0
                    } else {
                        (v.min(u32::MAX as f64).trunc() as u32) as u64
                    }
                }
            };
            wz(state, rd, result);
            r.src_fp(rn);
            r.dst_zr(rd);
        }
        FmovIntFp { to_fp, sf, size, rd, rn } => {
            if to_fp {
                let v = narrow(sf, rz(state, rn));
                state.f[rd as usize] = if size == FpSize::S { v & 0xFFFF_FFFF } else { v };
                r.src_zr(rn);
                r.dst_fp(rd);
            } else {
                let bits = state.f[rn as usize];
                let v = if size == FpSize::S { bits & 0xFFFF_FFFF } else { bits };
                wz(state, rd, v);
                r.src_fp(rn);
                r.dst_zr(rd);
            }
        }
        FmovImm { size, rd, imm8 } => {
            write_fp(state, rd, size, fp_imm8_to_f64(imm8));
            r.dst_fp(rd);
        }
        Nop => {}
        Svc { .. } => {
            let num = state.x[8];
            let args = [state.x[0], state.x[1], state.x[2]];
            let ret = state.syscall(pc, num, args)?;
            state.x[0] = ret;
            r.src_zr(8);
            r.src_zr(0);
            r.src_zr(1);
            r.src_zr(2);
            r.dst_zr(0);
        }
        Brk { .. } => return Err(SimError::Breakpoint { pc }),
    }

    state.pc = next_pc;
    Ok(r.ri)
}

/// IEEE max preserving +0 > -0 ordering.
fn pick_max(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        if a.is_sign_positive() { a } else { b }
    } else if a > b {
        a
    } else {
        b
    }
}

fn pick_min(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        if a.is_sign_negative() { a } else { b }
    } else if a < b {
        a
    } else {
        b
    }
}

fn load_int(state: &mut CpuState, addr: u64, size: MemSize) -> Result<u64, SimError> {
    Ok(match size {
        MemSize::B => state.mem.read_u8(addr)? as u64,
        MemSize::H => state.mem.read_u16(addr)? as u64,
        MemSize::W => state.mem.read_u32(addr)? as u64,
        MemSize::X => state.mem.read_u64(addr)?,
        MemSize::Sb => state.mem.read_u8(addr)? as i8 as i64 as u64,
        MemSize::Sh => state.mem.read_u16(addr)? as i16 as i64 as u64,
        MemSize::Sw => state.mem.read_u32(addr)? as i32 as i64 as u64,
    })
}

fn store_int(state: &mut CpuState, addr: u64, size: MemSize, v: u64) -> Result<(), SimError> {
    match size.bytes() {
        1 => state.mem.write_u8(addr, v as u8),
        2 => state.mem.write_u16(addr, v as u16),
        4 => state.mem.write_u32(addr, v as u32),
        _ => state.mem.write_u64(addr, v),
    }
}

fn load_fp(state: &mut CpuState, addr: u64, size: FpSize, rt: u8) -> Result<(), SimError> {
    state.f[rt as usize] = match size {
        FpSize::S => state.mem.read_u32(addr)? as u64,
        FpSize::D => state.mem.read_u64(addr)?,
    };
    Ok(())
}

fn store_fp(state: &mut CpuState, addr: u64, size: FpSize, rt: u8) -> Result<(), SimError> {
    match size {
        FpSize::S => state.mem.write_u32(addr, state.f[rt as usize] as u32),
        FpSize::D => state.mem.write_u64(addr, state.f[rt as usize]),
    }
}

/// Read an FP register as f64 (S registers hold the value in the low 32
/// bits, upper bits zero — AArch64 scalar writes zero the rest).
fn read_fp(state: &CpuState, r: u8, size: FpSize) -> f64 {
    match size {
        FpSize::S => f32::from_bits(state.f[r as usize] as u32) as f64,
        FpSize::D => f64::from_bits(state.f[r as usize]),
    }
}

fn write_fp(state: &mut CpuState, r: u8, size: FpSize, v: f64) {
    state.f[r as usize] = match size {
        FpSize::S => (v as f32).to_bits() as u64,
        FpSize::D => v.to_bits(),
    };
}

/// Helper trait for `cls`.
trait LeadingSign {
    fn leading_zeros_of_sign(self) -> u32;
}

impl LeadingSign for i64 {
    fn leading_zeros_of_sign(self) -> u32 {
        let v = if self < 0 { !self } else { self };
        (v as u64).leading_zeros().saturating_sub(1)
    }
}

trait LeadingSign32 {
    fn leading_zeros_of_sign32(self) -> u32;
}

impl LeadingSign32 for i32 {
    fn leading_zeros_of_sign32(self) -> u32 {
        let v = if self < 0 { !self } else { self };
        (v as u32).leading_zeros().saturating_sub(1)
    }
}
