//! Two-pass A64 assembler with labels, data sections and kernel regions.
//!
//! Mirrors the RISC-V `RvAsm` builder API so the `kernelgen` back-ends treat
//! both targets uniformly. Every pushed item is exactly one instruction
//! word; `mov_imm`/`la` pseudo-ops expand eagerly.

use std::collections::HashMap;

use simcore::{IsaKind, Program, Region, Section};

use crate::encode::{encode, f64_to_fp_imm8};
use crate::inst::*;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

enum Item {
    Fixed(Inst),
    BTo { link: bool, label: Label },
    BCondTo { cond: Cond, label: Label },
    CbzTo { nonzero: bool, sf: bool, rt: u8, label: Label },
    TbzTo { nonzero: bool, rt: u8, bit: u8, label: Label },
}

/// A64 assembler/builder.
pub struct A64Asm {
    text_base: u64,
    data_base: u64,
    items: Vec<Item>,
    labels: Vec<Option<usize>>,
    data: Vec<u8>,
    region_stack: Vec<(String, usize)>,
    regions: Vec<(String, usize, usize)>,
    entry_item: usize,
}

impl A64Asm {
    /// New assembler with text at `text_base` and data at `data_base`.
    pub fn new(text_base: u64, data_base: u64) -> Self {
        assert_eq!(text_base & 3, 0);
        A64Asm {
            text_base,
            data_base,
            items: Vec::new(),
            labels: Vec::new(),
            data: Vec::new(),
            region_stack: Vec::new(),
            regions: Vec::new(),
            entry_item: 0,
        }
    }

    // ---- labels & regions -------------------------------------------------

    /// Allocate an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.items.len());
    }

    /// Begin a named kernel region.
    pub fn begin_region(&mut self, name: &str) {
        self.region_stack.push((name.to_string(), self.items.len()));
    }

    /// End the innermost open region.
    pub fn end_region(&mut self) {
        let (name, start) = self.region_stack.pop().expect("no open region");
        self.regions.push((name, start, self.items.len()));
    }

    /// Mark the current position as the program entry point.
    pub fn set_entry_here(&mut self) {
        self.entry_item = self.items.len();
    }

    /// PC the next pushed instruction will occupy.
    pub fn here(&self) -> u64 {
        self.text_base + 4 * self.items.len() as u64
    }

    // ---- data section ------------------------------------------------------

    fn align_data(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Append raw bytes; returns their guest address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Append an aligned `u64`; returns its guest address.
    pub fn data_u64(&mut self, v: u64) -> u64 {
        self.align_data(8);
        self.data_bytes(&v.to_le_bytes())
    }

    /// Append an aligned `f64` array; returns its guest address.
    pub fn data_f64_array(&mut self, vals: &[f64]) -> u64 {
        self.align_data(8);
        let addr = self.data_base + self.data.len() as u64;
        for v in vals {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Reserve `len` zeroed bytes; returns the guest address.
    pub fn data_zero(&mut self, len: usize, align: usize) -> u64 {
        self.align_data(align);
        let addr = self.data_base + self.data.len() as u64;
        self.data.resize(self.data.len() + len, 0);
        addr
    }

    // ---- raw pushes ----------------------------------------------------------

    /// Push an already-constructed instruction.
    pub fn push(&mut self, inst: Inst) {
        self.items.push(Item::Fixed(inst));
    }

    // ---- integer convenience ---------------------------------------------

    /// `add xd, xn, xm`.
    pub fn add(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::AddSubShifted {
            sub: false,
            set_flags: false,
            sf: true,
            rd,
            rn,
            rm,
            shift: ShiftType::Lsl,
            amount: 0,
        });
    }
    /// `add xd, xn, xm, lsl #amount`.
    pub fn add_shifted(&mut self, rd: u8, rn: u8, rm: u8, amount: u8) {
        self.push(Inst::AddSubShifted {
            sub: false,
            set_flags: false,
            sf: true,
            rd,
            rn,
            rm,
            shift: ShiftType::Lsl,
            amount,
        });
    }
    /// `sub xd, xn, xm`.
    pub fn sub(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::AddSubShifted {
            sub: true,
            set_flags: false,
            sf: true,
            rd,
            rn,
            rm,
            shift: ShiftType::Lsl,
            amount: 0,
        });
    }
    /// `add xd, xn, #imm` (imm in 0..4096).
    pub fn add_imm(&mut self, rd: u8, rn: u8, imm: u64) {
        assert!(imm < 4096, "add immediate out of range: {imm}");
        self.push(Inst::AddSubImm {
            sub: false,
            set_flags: false,
            sf: true,
            rd,
            rn,
            imm12: imm as u16,
            shift12: false,
        });
    }
    /// `sub xd, xn, #imm`.
    pub fn sub_imm(&mut self, rd: u8, rn: u8, imm: u64) {
        assert!(imm < 4096, "sub immediate out of range: {imm}");
        self.push(Inst::AddSubImm {
            sub: true,
            set_flags: false,
            sf: true,
            rd,
            rn,
            imm12: imm as u16,
            shift12: false,
        });
    }
    /// `subs xzr, xn, #imm` — `cmp xn, #imm`.
    pub fn cmp_imm(&mut self, rn: u8, imm: u64) {
        assert!(imm < 4096);
        self.push(Inst::AddSubImm {
            sub: true,
            set_flags: true,
            sf: true,
            rd: 31,
            rn,
            imm12: imm as u16,
            shift12: false,
        });
    }
    /// `subs xzr, xn, xm` — `cmp xn, xm`.
    pub fn cmp(&mut self, rn: u8, rm: u8) {
        self.push(Inst::AddSubShifted {
            sub: true,
            set_flags: true,
            sf: true,
            rd: 31,
            rn,
            rm,
            shift: ShiftType::Lsl,
            amount: 0,
        });
    }
    /// `subs xd, xn, #imm`.
    pub fn subs_imm(&mut self, rd: u8, rn: u8, imm: u64) {
        assert!(imm < 4096);
        self.push(Inst::AddSubImm {
            sub: true,
            set_flags: true,
            sf: true,
            rd,
            rn,
            imm12: imm as u16,
            shift12: false,
        });
    }
    /// `mul xd, xn, xm` (`madd` with `xzr` accumulator).
    pub fn mul(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::MulAdd { sub: false, sf: true, rd, rn, rm, ra: 31 });
    }
    /// `madd xd, xn, xm, xa`.
    pub fn madd(&mut self, rd: u8, rn: u8, rm: u8, ra: u8) {
        self.push(Inst::MulAdd { sub: false, sf: true, rd, rn, rm, ra });
    }
    /// `sdiv xd, xn, xm`.
    pub fn sdiv(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::Div { unsigned: false, sf: true, rd, rn, rm });
    }
    /// `lsl xd, xn, #shift` (ubfm alias).
    pub fn lsl_imm(&mut self, rd: u8, rn: u8, shift: u8) {
        assert!(shift < 64);
        self.push(Inst::Bitfield {
            op: BitfieldOp::Ubfm,
            sf: true,
            rd,
            rn,
            immr: (64 - shift as u32) as u8 % 64,
            imms: 63 - shift,
        });
    }
    /// `lsr xd, xn, #shift`.
    pub fn lsr_imm(&mut self, rd: u8, rn: u8, shift: u8) {
        assert!(shift < 64);
        self.push(Inst::Bitfield { op: BitfieldOp::Ubfm, sf: true, rd, rn, immr: shift, imms: 63 });
    }
    /// `asr xd, xn, #shift`.
    pub fn asr_imm(&mut self, rd: u8, rn: u8, shift: u8) {
        assert!(shift < 64);
        self.push(Inst::Bitfield { op: BitfieldOp::Sbfm, sf: true, rd, rn, immr: shift, imms: 63 });
    }
    /// `mov xd, xm` (orr alias).
    pub fn mov(&mut self, rd: u8, rm: u8) {
        self.push(Inst::LogicalShifted {
            op: LogicOp::Orr,
            sf: true,
            rd,
            rn: 31,
            rm,
            shift: ShiftType::Lsl,
            amount: 0,
        });
    }
    /// `nop`.
    pub fn nop(&mut self) {
        self.push(Inst::Nop);
    }

    /// Materialise an arbitrary 64-bit constant (movz/movn + movk chain,
    /// exactly GCC's expansion).
    pub fn mov_imm(&mut self, rd: u8, imm: u64) {
        // Count halfwords that are 0000 vs ffff to pick movz or movn start.
        let halves: Vec<u16> = (0..4).map(|i| (imm >> (16 * i)) as u16).collect();
        let zeros = halves.iter().filter(|&&h| h == 0).count();
        let ones = halves.iter().filter(|&&h| h == 0xFFFF).count();
        if ones > zeros {
            // movn start.
            let first = halves.iter().position(|&h| h != 0xFFFF).unwrap_or(0);
            self.push(Inst::MovWide {
                op: MovOp::Movn,
                sf: true,
                rd,
                imm16: !halves[first],
                hw: first as u8,
            });
            for (i, &h) in halves.iter().enumerate() {
                if i != first && h != 0xFFFF {
                    self.push(Inst::MovWide { op: MovOp::Movk, sf: true, rd, imm16: h, hw: i as u8 });
                }
            }
        } else {
            let first = halves.iter().position(|&h| h != 0).unwrap_or(0);
            self.push(Inst::MovWide {
                op: MovOp::Movz,
                sf: true,
                rd,
                imm16: halves[first],
                hw: first as u8,
            });
            for (i, &h) in halves.iter().enumerate() {
                if i != first && h != 0 {
                    self.push(Inst::MovWide { op: MovOp::Movk, sf: true, rd, imm16: h, hw: i as u8 });
                }
            }
        }
    }

    /// Load the address `addr` into `rd` (`adrp` + `add`, GCC's -static
    /// addressing idiom).
    pub fn la(&mut self, rd: u8, addr: u64) {
        let here = self.here();
        let page_delta = (addr & !0xFFF).wrapping_sub(here & !0xFFF) as i64;
        self.push(Inst::Adrp { rd, offset: page_delta });
        let lo = addr & 0xFFF;
        if lo != 0 {
            self.add_imm(rd, rd, lo);
        }
    }

    // ---- branches ----------------------------------------------------------

    /// `b label`.
    pub fn b(&mut self, label: Label) {
        self.items.push(Item::BTo { link: false, label });
    }
    /// `bl label`.
    pub fn bl(&mut self, label: Label) {
        self.items.push(Item::BTo { link: true, label });
    }
    /// `b.cond label`.
    pub fn b_cond(&mut self, cond: Cond, label: Label) {
        self.items.push(Item::BCondTo { cond, label });
    }
    /// `b.ne label`.
    pub fn b_ne(&mut self, label: Label) {
        self.b_cond(Cond::Ne, label);
    }
    /// `b.eq label`.
    pub fn b_eq(&mut self, label: Label) {
        self.b_cond(Cond::Eq, label);
    }
    /// `b.lt label`.
    pub fn b_lt(&mut self, label: Label) {
        self.b_cond(Cond::Lt, label);
    }
    /// `b.ge label`.
    pub fn b_ge(&mut self, label: Label) {
        self.b_cond(Cond::Ge, label);
    }
    /// `cbz xt, label`.
    pub fn cbz(&mut self, rt: u8, label: Label) {
        self.items.push(Item::CbzTo { nonzero: false, sf: true, rt, label });
    }
    /// `cbnz xt, label`.
    pub fn cbnz(&mut self, rt: u8, label: Label) {
        self.items.push(Item::CbzTo { nonzero: true, sf: true, rt, label });
    }
    /// `tbz xt, #bit, label`.
    pub fn tbz(&mut self, rt: u8, bit: u8, label: Label) {
        self.items.push(Item::TbzTo { nonzero: false, rt, bit, label });
    }
    /// `ret`.
    pub fn ret(&mut self) {
        self.push(Inst::BrReg { link: false, ret: true, rn: 30 });
    }

    // ---- memory ------------------------------------------------------------

    /// `ldr xt, [xn, #off]` (off must be 8-byte scaled).
    pub fn ldr_imm(&mut self, rt: u8, rn: u8, off: u64) {
        assert_eq!(off % 8, 0);
        self.push(Inst::LdrImm { size: MemSize::X, rt, rn, imm12: (off / 8) as u16 });
    }
    /// `str xt, [xn, #off]`.
    pub fn str_imm(&mut self, rt: u8, rn: u8, off: u64) {
        assert_eq!(off % 8, 0);
        self.push(Inst::StrImm { size: MemSize::X, rt, rn, imm12: (off / 8) as u16 });
    }
    /// `ldr dt, [xn, #off]`.
    pub fn ldr_d_imm(&mut self, rt: u8, rn: u8, off: u64) {
        assert_eq!(off % 8, 0);
        self.push(Inst::LdrFpImm { size: FpSize::D, rt, rn, imm12: (off / 8) as u16 });
    }
    /// `str dt, [xn, #off]`.
    pub fn str_d_imm(&mut self, rt: u8, rn: u8, off: u64) {
        assert_eq!(off % 8, 0);
        self.push(Inst::StrFpImm { size: FpSize::D, rt, rn, imm12: (off / 8) as u16 });
    }
    /// `ldr dt, [xn, xm, lsl #3]` — the paper's register-offset load.
    pub fn ldr_d_reg(&mut self, rt: u8, rn: u8, rm: u8) {
        self.push(Inst::LdrFpReg { size: FpSize::D, rt, rn, rm, extend: Extend::Uxtx, shift: true });
    }
    /// `str dt, [xn, xm, lsl #3]`.
    pub fn str_d_reg(&mut self, rt: u8, rn: u8, rm: u8) {
        self.push(Inst::StrFpReg { size: FpSize::D, rt, rn, rm, extend: Extend::Uxtx, shift: true });
    }
    /// `ldr dt, [xn], #off` — post-indexed.
    pub fn ldr_d_post(&mut self, rt: u8, rn: u8, off: i16) {
        self.push(Inst::LdrFpIdx { size: FpSize::D, mode: IndexMode::Post, rt, rn, simm9: off });
    }
    /// `str dt, [xn], #off` — post-indexed.
    pub fn str_d_post(&mut self, rt: u8, rn: u8, off: i16) {
        self.push(Inst::StrFpIdx { size: FpSize::D, mode: IndexMode::Post, rt, rn, simm9: off });
    }
    /// `ldr xt, [xn, xm, lsl #3]`.
    pub fn ldr_reg(&mut self, rt: u8, rn: u8, rm: u8) {
        self.push(Inst::LdrReg { size: MemSize::X, rt, rn, rm, extend: Extend::Uxtx, shift: true });
    }
    /// `str xt, [xn, xm, lsl #3]`.
    pub fn str_reg(&mut self, rt: u8, rn: u8, rm: u8) {
        self.push(Inst::StrReg { size: MemSize::X, rt, rn, rm, extend: Extend::Uxtx, shift: true });
    }

    // ---- FP ------------------------------------------------------------------

    /// `fadd dd, dn, dm`.
    pub fn fadd_d(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::FpBin { op: FpBinOp::Fadd, size: FpSize::D, rd, rn, rm });
    }
    /// `fsub dd, dn, dm`.
    pub fn fsub_d(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::FpBin { op: FpBinOp::Fsub, size: FpSize::D, rd, rn, rm });
    }
    /// `fmul dd, dn, dm`.
    pub fn fmul_d(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::FpBin { op: FpBinOp::Fmul, size: FpSize::D, rd, rn, rm });
    }
    /// `fdiv dd, dn, dm`.
    pub fn fdiv_d(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::FpBin { op: FpBinOp::Fdiv, size: FpSize::D, rd, rn, rm });
    }
    /// `fsqrt dd, dn`.
    pub fn fsqrt_d(&mut self, rd: u8, rn: u8) {
        self.push(Inst::FpUn { op: FpUnOp::Fsqrt, size: FpSize::D, rd, rn });
    }
    /// `fneg dd, dn`.
    pub fn fneg_d(&mut self, rd: u8, rn: u8) {
        self.push(Inst::FpUn { op: FpUnOp::Fneg, size: FpSize::D, rd, rn });
    }
    /// `fabs dd, dn`.
    pub fn fabs_d(&mut self, rd: u8, rn: u8) {
        self.push(Inst::FpUn { op: FpUnOp::Fabs, size: FpSize::D, rd, rn });
    }
    /// `fmov dd, dn`.
    pub fn fmov_d(&mut self, rd: u8, rn: u8) {
        self.push(Inst::FpUn { op: FpUnOp::Fmov, size: FpSize::D, rd, rn });
    }
    /// `fmadd dd, dn, dm, da` — `dn*dm + da`.
    pub fn fmadd_d(&mut self, rd: u8, rn: u8, rm: u8, ra: u8) {
        self.push(Inst::FpFma { op: FpFmaOp::Fmadd, size: FpSize::D, rd, rn, rm, ra });
    }
    /// `fmsub dd, dn, dm, da` — `-(dn*dm) + da`.
    pub fn fmsub_d(&mut self, rd: u8, rn: u8, rm: u8, ra: u8) {
        self.push(Inst::FpFma { op: FpFmaOp::Fmsub, size: FpSize::D, rd, rn, rm, ra });
    }
    /// `fmin dd, dn, dm` / `fmax dd, dn, dm`.
    pub fn fmin_d(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::FpBin { op: FpBinOp::Fmin, size: FpSize::D, rd, rn, rm });
    }
    /// `fmax dd, dn, dm`.
    pub fn fmax_d(&mut self, rd: u8, rn: u8, rm: u8) {
        self.push(Inst::FpBin { op: FpBinOp::Fmax, size: FpSize::D, rd, rn, rm });
    }
    /// `fcmp dn, dm`.
    pub fn fcmp_d(&mut self, rn: u8, rm: u8) {
        self.push(Inst::Fcmp { size: FpSize::D, rn, rm, zero: false });
    }
    /// `scvtf dd, xn`.
    pub fn scvtf_d(&mut self, rd: u8, rn: u8) {
        self.push(Inst::IntToFp { unsigned: false, sf: true, size: FpSize::D, rd, rn });
    }
    /// `fcvtzs xd, dn`.
    pub fn fcvtzs(&mut self, rd: u8, rn: u8) {
        self.push(Inst::FpToInt { unsigned: false, sf: true, size: FpSize::D, rd, rn });
    }
    /// `fmov dd, #imm` — panics if the constant is not VFP-representable.
    pub fn fmov_d_imm(&mut self, rd: u8, v: f64) {
        let imm8 = f64_to_fp_imm8(v)
            .unwrap_or_else(|| panic!("{v} is not representable as an FP immediate"));
        self.push(Inst::FmovImm { size: FpSize::D, rd, imm8 });
    }

    /// Emit the Linux `exit(code)` sequence.
    pub fn exit(&mut self, code: u64) {
        self.mov_imm(8, 93); // x8 = SYS_exit
        self.mov_imm(0, code); // x0 = code
        self.push(Inst::Svc { imm16: 0 });
    }

    // ---- finalisation -------------------------------------------------------

    /// Resolve labels, encode everything and build the loadable [`Program`].
    pub fn finish(self) -> Program {
        assert!(self.region_stack.is_empty(), "unclosed region");
        let resolve = |label: Label, labels: &[Option<usize>]| -> u64 {
            let idx = labels[label.0].expect("unbound label");
            self.text_base + 4 * idx as u64
        };
        let mut text = Vec::with_capacity(self.items.len() * 4);
        for (i, item) in self.items.iter().enumerate() {
            let pc = self.text_base + 4 * i as u64;
            let inst = match item {
                Item::Fixed(inst) => *inst,
                Item::BTo { link, label } => {
                    let offset = resolve(*label, &self.labels).wrapping_sub(pc) as i64;
                    assert!((-(1 << 27)..(1 << 27)).contains(&offset), "b offset {offset}");
                    Inst::B { link: *link, offset }
                }
                Item::BCondTo { cond, label } => {
                    let offset = resolve(*label, &self.labels).wrapping_sub(pc) as i64;
                    assert!((-(1 << 20)..(1 << 20)).contains(&offset), "b.cond offset {offset}");
                    Inst::BCond { cond: *cond, offset }
                }
                Item::CbzTo { nonzero, sf, rt, label } => {
                    let offset = resolve(*label, &self.labels).wrapping_sub(pc) as i64;
                    assert!((-(1 << 20)..(1 << 20)).contains(&offset), "cbz offset {offset}");
                    Inst::Cbz { nonzero: *nonzero, sf: *sf, rt: *rt, offset }
                }
                Item::TbzTo { nonzero, rt, bit, label } => {
                    let offset = resolve(*label, &self.labels).wrapping_sub(pc) as i64;
                    assert!((-(1 << 15)..(1 << 15)).contains(&offset), "tbz offset {offset}");
                    Inst::Tbz { nonzero: *nonzero, rt: *rt, bit: *bit, offset }
                }
            };
            text.extend_from_slice(&encode(&inst).to_le_bytes());
        }

        let mut merged: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for (name, s, e) in &self.regions {
            let start = self.text_base + 4 * *s as u64;
            let end = self.text_base + 4 * *e as u64;
            if !merged.contains_key(name) {
                order.push(name.clone());
            }
            merged.entry(name.clone()).or_default().push((start, end));
        }
        let mut regions = Vec::new();
        for name in order {
            for (start, end) in &merged[&name] {
                regions.push(Region { name: name.clone(), start: *start, end: *end });
            }
        }

        let mut program = Program::new(IsaKind::AArch64);
        program.entry = self.text_base + 4 * self.entry_item as u64;
        program.sections.push(Section {
            addr: self.text_base,
            bytes: text,
            name: ".text".into(),
        });
        if !self.data.is_empty() {
            program.sections.push(Section {
                addr: self.data_base,
                bytes: self.data,
                name: ".data".into(),
            });
        }
        program.regions = regions;
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::AArch64Executor;
    use simcore::{CpuState, EmulationCore, Program};

    fn run(program: &Program) -> CpuState {
        let mut st = CpuState::new();
        program.load(&mut st).unwrap();
        let core = EmulationCore::new(AArch64Executor::new());
        core.run(&mut st, &mut []).unwrap();
        st
    }

    #[test]
    fn trivial_exit_program() {
        let mut a = A64Asm::new(0x1_0000, 0x10_0000);
        a.exit(9);
        let st = run(&a.finish());
        assert_eq!(st.exited, Some(9));
    }

    #[test]
    fn paper_listing_1_copy_kernel_runs() {
        // The exact GCC 12.2 copy-kernel shape from the paper's Listing 1:
        //   ldr d1, [x22, x0, lsl #3]
        //   str d1, [x19, x0, lsl #3]
        //   add x0, x0, #1
        //   cmp x0, x20
        //   b.ne loop
        let n = 16usize;
        let mut a = A64Asm::new(0x1_0000, 0x10_0000);
        let src: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
        let src_addr = a.data_f64_array(&src);
        let dst_addr = a.data_zero(8 * n, 8);
        a.la(22, src_addr);
        a.la(19, dst_addr);
        a.mov_imm(20, n as u64);
        a.mov_imm(0, 0);
        let l = a.new_label();
        a.bind(l);
        a.ldr_d_reg(1, 22, 0);
        a.str_d_reg(1, 19, 0);
        a.add_imm(0, 0, 1);
        a.cmp(0, 20);
        a.b_ne(l);
        a.exit(0);
        let st = run(&a.finish());
        for (i, v) in src.iter().enumerate() {
            assert_eq!(st.mem.read_f64(dst_addr + 8 * i as u64).unwrap(), *v);
        }
    }

    #[test]
    fn mov_imm_covers_64_bit_constants() {
        for &v in &[
            0u64,
            1,
            42,
            0xFFFF,
            0x1_0000,
            0xDEAD_BEEF,
            0xFFFF_FFFF_FFFF_FFFF,
            0xFFFF_FFFF_FFFF_0000,
            0x1234_5678_9ABC_DEF0,
            i64::MIN as u64,
            0x8000_0000_0000_0001,
        ] {
            let mut a = A64Asm::new(0x1_0000, 0x10_0000);
            let out = a.data_zero(8, 8);
            a.mov_imm(5, v);
            a.la(6, out);
            a.str_imm(5, 6, 0);
            a.exit(0);
            let st = run(&a.finish());
            assert_eq!(st.mem.read_u64(out).unwrap(), v, "mov_imm {v:#x}");
        }
    }

    #[test]
    fn post_indexed_copy_variant() {
        // The paper's §3.3 "more optimal" 4-instruction copy:
        //   ldr d0, [x22], #8 ; str d0, [x19], #8 ; cmp x22, x20 ; b.ne
        let n = 8usize;
        let mut a = A64Asm::new(0x1_0000, 0x10_0000);
        let src: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let src_addr = a.data_f64_array(&src);
        let dst_addr = a.data_zero(8 * n, 8);
        a.la(22, src_addr);
        a.la(19, dst_addr);
        a.la(20, src_addr + 8 * n as u64);
        let l = a.new_label();
        a.bind(l);
        a.ldr_d_post(0, 22, 8);
        a.str_d_post(0, 19, 8);
        a.cmp(22, 20);
        a.b_ne(l);
        a.exit(0);
        let st = run(&a.finish());
        for (i, v) in src.iter().enumerate() {
            assert_eq!(st.mem.read_f64(dst_addr + 8 * i as u64).unwrap(), *v);
        }
    }

    #[test]
    fn regions_and_forward_branches() {
        let mut a = A64Asm::new(0x1_0000, 0x10_0000);
        let out = a.data_zero(8, 8);
        let skip = a.new_label();
        a.begin_region("head");
        a.mov_imm(1, 7);
        a.end_region();
        a.cbz(31, skip); // xzr is always zero -> taken
        a.mov_imm(1, 99);
        a.bind(skip);
        a.la(2, out);
        a.str_imm(1, 2, 0);
        a.exit(0);
        let p = a.finish();
        assert_eq!(p.regions.len(), 1);
        let st = run(&p);
        assert_eq!(st.mem.read_u64(out).unwrap(), 7);
    }
}
