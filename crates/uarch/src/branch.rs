//! Branch-prediction models.
//!
//! The paper's analyses assume perfect branch prediction; this module
//! quantifies how much that assumption hides, per ISA. It matters for the
//! comparison because the two ISAs *execute different numbers of
//! branches* for the same program (RISC-V fuses compare-and-branch;
//! AArch64 splits them into `cmp` + `b.cond`), so prediction behaviour is
//! one of the ISA-visible effects the paper leaves to future work.
//!
//! Predictors are trace-driven observers over the retirement stream:
//! [`BimodalPredictor`] (per-PC 2-bit counters) and [`GsharePredictor`]
//! (global history XOR PC). Both report [`BranchStats`].

use simcore::{Observer, RetiredInst};

/// Outcome statistics for a predictor run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional + unconditional control-flow instructions seen.
    pub branches: u64,
    /// Correct predictions.
    pub hits: u64,
    /// Taken branches.
    pub taken: u64,
}

impl BranchStats {
    /// Prediction accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        self.hits as f64 / self.branches.max(1) as f64
    }

    /// Mispredictions per kilo-instruction given a total path length.
    pub fn mpki(&self, path_length: u64) -> f64 {
        (self.branches - self.hits) as f64 * 1000.0 / path_length.max(1) as f64
    }
}

/// Saturating 2-bit counter.
#[derive(Debug, Clone, Copy, Default)]
struct Counter2(u8);

impl Counter2 {
    #[inline]
    fn predict(self) -> bool {
        self.0 >= 2
    }
    #[inline]
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Per-PC table of 2-bit counters.
pub struct BimodalPredictor {
    table: Vec<Counter2>,
    mask: usize,
    stats: BranchStats,
}

impl BimodalPredictor {
    /// Predictor with `2^log2_entries` counters.
    pub fn new(log2_entries: u32) -> Self {
        let n = 1usize << log2_entries;
        BimodalPredictor { table: vec![Counter2::default(); n], mask: n - 1, stats: BranchStats::default() }
    }

    /// Statistics so far.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }
}

impl Observer for BimodalPredictor {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        if !ri.is_branch {
            return;
        }
        let idx = ((ri.pc >> 2) as usize) & self.mask;
        let predicted = self.table[idx].predict();
        self.table[idx].update(ri.taken);
        self.stats.branches += 1;
        if ri.taken {
            self.stats.taken += 1;
        }
        if predicted == ri.taken {
            self.stats.hits += 1;
        }
    }
}

/// Gshare: global-history register XORed into the PC index.
pub struct GsharePredictor {
    table: Vec<Counter2>,
    mask: usize,
    history: u64,
    history_bits: u32,
    stats: BranchStats,
}

impl GsharePredictor {
    /// Predictor with `2^log2_entries` counters and `history_bits` of
    /// global history.
    pub fn new(log2_entries: u32, history_bits: u32) -> Self {
        let n = 1usize << log2_entries;
        GsharePredictor {
            table: vec![Counter2::default(); n],
            mask: n - 1,
            history: 0,
            history_bits,
            stats: BranchStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }
}

impl Observer for GsharePredictor {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        if !ri.is_branch {
            return;
        }
        let idx = (((ri.pc >> 2) ^ self.history) as usize) & self.mask;
        let predicted = self.table[idx].predict();
        self.table[idx].update(ri.taken);
        self.history = ((self.history << 1) | ri.taken as u64) & ((1 << self.history_bits) - 1);
        self.stats.branches += 1;
        if ri.taken {
            self.stats.taken += 1;
        }
        if predicted == ri.taken {
            self.stats.hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::InstGroup;

    fn branch(pc: u64, taken: bool) -> RetiredInst {
        let mut ri = RetiredInst::new(pc, InstGroup::Branch);
        ri.is_branch = true;
        ri.taken = taken;
        ri
    }

    #[test]
    fn bimodal_learns_a_loop() {
        let mut p = BimodalPredictor::new(10);
        // Back edge taken 99 times, then falls through once.
        for _ in 0..99 {
            p.on_retire(&branch(0x100, true));
        }
        p.on_retire(&branch(0x100, false));
        let s = p.stats();
        assert_eq!(s.branches, 100);
        // Warm-up misses (2) + the final not-taken miss.
        assert!(s.accuracy() > 0.95, "accuracy {}", s.accuracy());
    }

    #[test]
    fn gshare_learns_alternation_bimodal_cannot() {
        // Strictly alternating branch: bimodal oscillates (~50 %); gshare
        // keys on history and converges.
        let mut bim = BimodalPredictor::new(10);
        let mut gs = GsharePredictor::new(10, 8);
        for i in 0..2000u64 {
            let b = branch(0x200, i % 2 == 0);
            bim.on_retire(&b);
            gs.on_retire(&b);
        }
        assert!(bim.stats().accuracy() < 0.75, "bimodal {}", bim.stats().accuracy());
        assert!(gs.stats().accuracy() > 0.95, "gshare {}", gs.stats().accuracy());
    }

    #[test]
    fn non_branches_ignored() {
        let mut p = BimodalPredictor::new(4);
        p.on_retire(&RetiredInst::new(0, InstGroup::IntAlu));
        assert_eq!(p.stats().branches, 0);
    }

    #[test]
    fn mpki_definition() {
        let s = BranchStats { branches: 100, hits: 90, taken: 50 };
        assert!((s.mpki(10_000) - 1.0).abs() < 1e-12);
    }
}
