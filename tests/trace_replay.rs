//! Differential test for trace-driven analysis: a matrix computed from
//! live emulation and a matrix computed by replaying the captured traces
//! must render byte-identical tables — the paper's numbers cannot depend
//! on which retirement source fed the analyses.

use isacmp::{run_matrix_opts, MatrixOptions, SizeClass, Workload};

fn opts(dir: &std::path::Path) -> MatrixOptions {
    MatrixOptions { trace_dir: Some(dir.to_path_buf()), ..Default::default() }
}

#[test]
fn replayed_matrix_reproduces_live_tables_byte_identically() {
    let dir = std::env::temp_dir().join(format!("isacmp-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tel = isacmp::telemetry::global();

    let captures_before = tel.counter("trace_captures");
    let live = run_matrix_opts(&Workload::ALL, SizeClass::Test, &opts(&dir));
    assert!(live.is_complete(), "live matrix must be clean:\n{}", live.failure_summary());
    let captured = tel.counter("trace_captures") - captures_before;
    assert_eq!(captured, 20, "every cell of the 5x2x2 matrix captures a trace");

    let replays_before = tel.counter("trace_replays");
    let replayed = run_matrix_opts(&Workload::ALL, SizeClass::Test, &opts(&dir));
    assert!(replayed.is_complete(), "replay must be clean:\n{}", replayed.failure_summary());
    let replays = tel.counter("trace_replays") - replays_before;
    assert_eq!(replays, 20, "second run must come entirely from the trace cache");

    // The headline artifacts, byte for byte.
    assert_eq!(live.table1(), replayed.table1());
    assert_eq!(live.table2(), replayed.table2());
    assert_eq!(live.fig1_csv(), replayed.fig1_csv());
    assert_eq!(live.fig2_csv(), replayed.fig2_csv());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_provenance_falls_back_to_live_recapture() {
    use isacmp::{run_cell_opts, CellOptions, IsaKind, Personality};

    let dir = std::env::temp_dir().join(format!("isacmp-stale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tel = isacmp::telemetry::global();
    let opts = CellOptions { trace_dir: Some(dir.clone()), ..Default::default() };

    let cell = |w| {
        run_cell_opts(w, IsaKind::RiscV, &Personality::gcc122(), SizeClass::Test, &opts)
            .expect("cell must run")
    };
    let first = cell(Workload::Stream);

    // Swap STREAM's cached trace for LBM's: the file exists but its header
    // names a different cell, so the replay path must reject it (counted
    // as trace_stale), rerun live, and recapture the right trace.
    let _ = cell(Workload::Lbm);
    let stream_path = dir.join("STREAM-gcc-12.2-RISC-V-test.trace");
    let lbm_path = dir.join("LBM-gcc-12.2-RISC-V-test.trace");
    std::fs::copy(&lbm_path, &stream_path).unwrap();

    let stale_before = tel.counter("trace_stale");
    let second = cell(Workload::Stream);
    assert_eq!(tel.counter("trace_stale") - stale_before, 1);
    assert_eq!(first, second, "fallback run must reproduce the live cell");

    // The recapture healed the cache: next run replays.
    let replays_before = tel.counter("trace_replays");
    let third = cell(Workload::Stream);
    assert_eq!(tel.counter("trace_replays") - replays_before, 1);
    assert_eq!(first, third);

    std::fs::remove_dir_all(&dir).ok();
}
