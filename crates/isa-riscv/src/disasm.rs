//! RV64G disassembler (GNU-style mnemonics, ABI register names).
//!
//! Used for the paper's listing-level analysis (§3.3 compares the copy
//! kernels instruction by instruction) and for diagnostics.

use crate::inst::*;

/// ABI name of integer register `n`.
pub fn xname(n: u8) -> &'static str {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
        "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
        "t3", "t4", "t5", "t6",
    ];
    NAMES[n as usize]
}

/// ABI name of FP register `n`.
pub fn fname(n: u8) -> &'static str {
    const NAMES: [&str; 32] = [
        "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1",
        "fa2", "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
        "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
    ];
    NAMES[n as usize]
}

fn fpw(w: FpWidth) -> &'static str {
    match w {
        FpWidth::S => "s",
        FpWidth::D => "d",
    }
}

fn amow(w: AmoWidth) -> &'static str {
    match w {
        AmoWidth::W => "w",
        AmoWidth::D => "d",
    }
}

fn int_ty_name(t: IntTy) -> &'static str {
    match t {
        IntTy::W => "w",
        IntTy::Wu => "wu",
        IntTy::L => "l",
        IntTy::Lu => "lu",
    }
}

/// Render a decoded instruction as assembly text.
pub fn disassemble(inst: &Inst) -> String {
    use Inst::*;
    match *inst {
        Lui { rd, imm } => format!("lui {}, {:#x}", xname(rd), (imm >> 12) & 0xFFFFF),
        Auipc { rd, imm } => format!("auipc {}, {:#x}", xname(rd), (imm >> 12) & 0xFFFFF),
        Jal { rd: 0, offset } => format!("j {offset}"),
        Jal { rd, offset } => format!("jal {}, {offset}", xname(rd)),
        Jalr { rd, rs1, offset } if rd == 0 && offset == 0 && rs1 == 1 => "ret".to_string(),
        Jalr { rd, rs1, offset } => {
            format!("jalr {}, {offset}({})", xname(rd), xname(rs1))
        }
        Branch { op, rs1, rs2, offset } => {
            let m = match op {
                BranchOp::Beq => "beq",
                BranchOp::Bne => "bne",
                BranchOp::Blt => "blt",
                BranchOp::Bge => "bge",
                BranchOp::Bltu => "bltu",
                BranchOp::Bgeu => "bgeu",
            };
            format!("{m} {}, {}, {offset}", xname(rs1), xname(rs2))
        }
        Load { op, rd, rs1, offset } => {
            let m = match op {
                LoadOp::Lb => "lb",
                LoadOp::Lh => "lh",
                LoadOp::Lw => "lw",
                LoadOp::Ld => "ld",
                LoadOp::Lbu => "lbu",
                LoadOp::Lhu => "lhu",
                LoadOp::Lwu => "lwu",
            };
            format!("{m} {}, {offset}({})", xname(rd), xname(rs1))
        }
        Store { op, rs2, rs1, offset } => {
            let m = match op {
                StoreOp::Sb => "sb",
                StoreOp::Sh => "sh",
                StoreOp::Sw => "sw",
                StoreOp::Sd => "sd",
            };
            format!("{m} {}, {offset}({})", xname(rs2), xname(rs1))
        }
        OpImm { op, rd, rs1, imm } => {
            if op == ImmOp::Addi && rs1 == 0 {
                return format!("li {}, {imm}", xname(rd));
            }
            if op == ImmOp::Addi && imm == 0 && rd == 0 && rs1 == 0 {
                return "nop".to_string();
            }
            let m = match op {
                ImmOp::Addi => "addi",
                ImmOp::Slti => "slti",
                ImmOp::Sltiu => "sltiu",
                ImmOp::Xori => "xori",
                ImmOp::Ori => "ori",
                ImmOp::Andi => "andi",
                ImmOp::Slli => "slli",
                ImmOp::Srli => "srli",
                ImmOp::Srai => "srai",
            };
            format!("{m} {}, {}, {imm}", xname(rd), xname(rs1))
        }
        OpImm32 { op, rd, rs1, imm } => {
            let m = match op {
                ImmOp32::Addiw => "addiw",
                ImmOp32::Slliw => "slliw",
                ImmOp32::Srliw => "srliw",
                ImmOp32::Sraiw => "sraiw",
            };
            format!("{m} {}, {}, {imm}", xname(rd), xname(rs1))
        }
        Op { op, rd, rs1, rs2 } => {
            let m = match op {
                RegOp::Add => "add",
                RegOp::Sub => "sub",
                RegOp::Sll => "sll",
                RegOp::Slt => "slt",
                RegOp::Sltu => "sltu",
                RegOp::Xor => "xor",
                RegOp::Srl => "srl",
                RegOp::Sra => "sra",
                RegOp::Or => "or",
                RegOp::And => "and",
                RegOp::Mul => "mul",
                RegOp::Mulh => "mulh",
                RegOp::Mulhsu => "mulhsu",
                RegOp::Mulhu => "mulhu",
                RegOp::Div => "div",
                RegOp::Divu => "divu",
                RegOp::Rem => "rem",
                RegOp::Remu => "remu",
            };
            format!("{m} {}, {}, {}", xname(rd), xname(rs1), xname(rs2))
        }
        Op32 { op, rd, rs1, rs2 } => {
            let m = match op {
                RegOp32::Addw => "addw",
                RegOp32::Subw => "subw",
                RegOp32::Sllw => "sllw",
                RegOp32::Srlw => "srlw",
                RegOp32::Sraw => "sraw",
                RegOp32::Mulw => "mulw",
                RegOp32::Divw => "divw",
                RegOp32::Divuw => "divuw",
                RegOp32::Remw => "remw",
                RegOp32::Remuw => "remuw",
            };
            format!("{m} {}, {}, {}", xname(rd), xname(rs1), xname(rs2))
        }
        Fence => "fence".to_string(),
        Ecall => "ecall".to_string(),
        Ebreak => "ebreak".to_string(),
        Lr { width, rd, rs1 } => {
            format!("lr.{} {}, ({})", amow(width), xname(rd), xname(rs1))
        }
        Sc { width, rd, rs1, rs2 } => format!(
            "sc.{} {}, {}, ({})",
            amow(width),
            xname(rd),
            xname(rs2),
            xname(rs1)
        ),
        Amo { op, width, rd, rs1, rs2 } => {
            let m = match op {
                AmoOp::Swap => "amoswap",
                AmoOp::Add => "amoadd",
                AmoOp::Xor => "amoxor",
                AmoOp::And => "amoand",
                AmoOp::Or => "amoor",
                AmoOp::Min => "amomin",
                AmoOp::Max => "amomax",
                AmoOp::Minu => "amominu",
                AmoOp::Maxu => "amomaxu",
            };
            format!(
                "{m}.{} {}, {}, ({})",
                amow(width),
                xname(rd),
                xname(rs2),
                xname(rs1)
            )
        }
        FpLoad { width, frd, rs1, offset } => {
            let m = if width == FpWidth::S { "flw" } else { "fld" };
            format!("{m} {}, {offset}({})", fname(frd), xname(rs1))
        }
        FpStore { width, frs2, rs1, offset } => {
            let m = if width == FpWidth::S { "fsw" } else { "fsd" };
            format!("{m} {}, {offset}({})", fname(frs2), xname(rs1))
        }
        FpReg { op, width, frd, frs1, frs2 } => {
            let m = match op {
                FpOp::Fadd => "fadd",
                FpOp::Fsub => "fsub",
                FpOp::Fmul => "fmul",
                FpOp::Fdiv => "fdiv",
                FpOp::Fsgnj => "fsgnj",
                FpOp::Fsgnjn => "fsgnjn",
                FpOp::Fsgnjx => "fsgnjx",
                FpOp::Fmin => "fmin",
                FpOp::Fmax => "fmax",
            };
            // fsgnj rd, rs, rs is the canonical fmv.
            if op == FpOp::Fsgnj && frs1 == frs2 {
                return format!("fmv.{} {}, {}", fpw(width), fname(frd), fname(frs1));
            }
            format!(
                "{m}.{} {}, {}, {}",
                fpw(width),
                fname(frd),
                fname(frs1),
                fname(frs2)
            )
        }
        FpFma { op, width, frd, frs1, frs2, frs3 } => {
            let m = match op {
                FmaOp::Fmadd => "fmadd",
                FmaOp::Fmsub => "fmsub",
                FmaOp::Fnmsub => "fnmsub",
                FmaOp::Fnmadd => "fnmadd",
            };
            format!(
                "{m}.{} {}, {}, {}, {}",
                fpw(width),
                fname(frd),
                fname(frs1),
                fname(frs2),
                fname(frs3)
            )
        }
        FpSqrt { width, frd, frs1 } => {
            format!("fsqrt.{} {}, {}", fpw(width), fname(frd), fname(frs1))
        }
        FpCmp { op, width, rd, frs1, frs2 } => {
            let m = match op {
                FpCmpOp::Feq => "feq",
                FpCmpOp::Flt => "flt",
                FpCmpOp::Fle => "fle",
            };
            format!(
                "{m}.{} {}, {}, {}",
                fpw(width),
                xname(rd),
                fname(frs1),
                fname(frs2)
            )
        }
        FcvtIntFromFp { ty, width, rd, frs1 } => format!(
            "fcvt.{}.{} {}, {}, rtz",
            int_ty_name(ty),
            fpw(width),
            xname(rd),
            fname(frs1)
        ),
        FcvtFpFromInt { ty, width, frd, rs1 } => format!(
            "fcvt.{}.{} {}, {}",
            fpw(width),
            int_ty_name(ty),
            fname(frd),
            xname(rs1)
        ),
        FcvtFpFp { to, from, frd, frs1 } => format!(
            "fcvt.{}.{} {}, {}",
            fpw(to),
            fpw(from),
            fname(frd),
            fname(frs1)
        ),
        FmvToInt { width, rd, frs1 } => {
            let suffix = if width == FpWidth::S { "w" } else { "d" };
            format!("fmv.x.{suffix} {}, {}", xname(rd), fname(frs1))
        }
        FmvToFp { width, frd, rs1 } => {
            let suffix = if width == FpWidth::S { "w" } else { "d" };
            format!("fmv.{suffix}.x {}, {}", fname(frd), xname(rs1))
        }
        Fclass { width, rd, frs1 } => {
            format!("fclass.{} {}, {}", fpw(width), xname(rd), fname(frs1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_kernel_listing_forms() {
        // The paper's Listing 2 (rv64g copy kernel) shapes.
        assert_eq!(
            disassemble(&Inst::FpLoad { width: FpWidth::D, frd: 15, rs1: 15, offset: 0 }),
            "fld fa5, 0(a5)"
        );
        assert_eq!(
            disassemble(&Inst::FpStore { width: FpWidth::D, frs2: 15, rs1: 14, offset: 0 }),
            "fsd fa5, 0(a4)"
        );
        assert_eq!(
            disassemble(&Inst::OpImm { op: ImmOp::Addi, rd: 15, rs1: 15, imm: 8 }),
            "addi a5, a5, 8"
        );
        assert_eq!(
            disassemble(&Inst::Branch { op: BranchOp::Bne, rs1: 15, rs2: 8, offset: -16 }),
            "bne a5, s0, -16"
        );
    }

    #[test]
    fn pseudo_instructions() {
        assert_eq!(
            disassemble(&Inst::Jalr { rd: 0, rs1: 1, offset: 0 }),
            "ret"
        );
        assert_eq!(
            disassemble(&Inst::OpImm { op: ImmOp::Addi, rd: 10, rs1: 0, imm: 7 }),
            "li a0, 7"
        );
        assert_eq!(disassemble(&Inst::Jal { rd: 0, offset: -32 }), "j -32");
    }
}
