#![warn(missing_docs)]
//! Compact binary retired-instruction traces: capture, replay, verification.
//!
//! The emulator retires hundreds of millions of instructions per paper-size
//! cell, and every analysis re-run used to pay that emulation cost again.
//! This crate splits *execution* from *analysis*: a [`TraceWriter`] rides the
//! retirement stream as a [`simcore::Observer`] and encodes each
//! [`simcore::RetiredInst`] into a delta-compressed, checksummed block
//! format (see [`format`] for the byte-level spec), and a [`TraceReader`]
//! replays the identical stream later — no compile, no emulation, one block
//! of memory — through the same observers via [`simcore::RetireSource`].
//!
//! Provenance travels with the bytes: the header records workload /
//! compiler / ISA / size-class plus the program's kernel regions, and the
//! trailer records the capture run's final architectural
//! [`state hash`](simcore::CpuState::state_hash) and wall time, so cache
//! hits can be validated and replay speedups measured.
//!
//! ```
//! use simcore::{InstGroup, Observer, RetiredInst};
//! use trace::{TraceMeta, TraceReader, TraceWriter};
//!
//! let meta = TraceMeta {
//!     workload: "STREAM".into(),
//!     compiler: "gcc-12.2".into(),
//!     isa: "RISC-V".into(),
//!     size: "test".into(),
//!     regions: vec![],
//! };
//! let mut buf = Vec::new();
//! let mut w = TraceWriter::new(&mut buf, &meta).unwrap();
//! for i in 0..100u64 {
//!     w.on_retire(&RetiredInst::new(0x1000 + i * 4, InstGroup::IntAlu));
//! }
//! w.finish(0, std::time::Duration::ZERO).unwrap();
//!
//! let reader = TraceReader::new(std::io::Cursor::new(&buf)).unwrap();
//! assert_eq!(reader.map(|r| r.unwrap()).count(), 100);
//! ```

pub mod format;
pub mod reader;
pub mod writer;

pub use crate::format::{TraceMeta, TraceTrailer, BLOCK_RECORDS, VERSION};
pub use crate::reader::{TraceError, TraceReader, TraceSummary};
pub use crate::writer::{TraceWriter, WriteSummary};
