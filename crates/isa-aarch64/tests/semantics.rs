//! Unit tests for A64 instruction semantics, including NZCV flag behaviour.

use isa_aarch64::exec::{cond_holds, execute};
use isa_aarch64::*;
use simcore::{CpuState, RegId};

fn fresh() -> CpuState {
    CpuState::new()
}

fn run1(inst: Inst, st: &mut CpuState) -> simcore::RetiredInst {
    execute(&inst, st.pc, st).unwrap()
}

fn add_shifted(sub: bool, set_flags: bool, rd: u8, rn: u8, rm: u8) -> Inst {
    Inst::AddSubShifted {
        sub,
        set_flags,
        sf: true,
        rd,
        rn,
        rm,
        shift: ShiftType::Lsl,
        amount: 0,
    }
}

#[test]
fn add_and_zero_register() {
    let mut st = fresh();
    st.x[1] = 40;
    st.x[2] = 2;
    let ri = run1(add_shifted(false, false, 0, 1, 2), &mut st);
    assert_eq!(st.x[0], 42);
    assert!(ri.srcs.contains(RegId::Int(1)));
    assert!(!ri.dsts.contains(RegId::Flags));
    // Writes to xzr discarded, not reported.
    let ri = run1(add_shifted(false, false, 31, 1, 2), &mut st);
    assert!(ri.dsts.is_empty());
}

#[test]
fn subs_flag_semantics() {
    let mut st = fresh();
    // cmp 5, 5 -> Z and C set (no borrow).
    st.x[1] = 5;
    st.x[2] = 5;
    let ri = run1(add_shifted(true, true, 31, 1, 2), &mut st);
    assert!(ri.dsts.contains(RegId::Flags));
    assert!(cond_holds(Cond::Eq, st.nzcv));
    assert!(cond_holds(Cond::Cs, st.nzcv));
    // cmp 3, 5 -> borrow: C clear, N set.
    st.x[1] = 3;
    run1(add_shifted(true, true, 31, 1, 2), &mut st);
    assert!(cond_holds(Cond::Ne, st.nzcv));
    assert!(cond_holds(Cond::Lt, st.nzcv));
    assert!(cond_holds(Cond::Cc, st.nzcv));
    // Signed overflow: i64::MAX - (-1).
    st.x[1] = i64::MAX as u64;
    st.x[2] = (-1i64) as u64;
    run1(add_shifted(true, true, 31, 1, 2), &mut st);
    assert!(cond_holds(Cond::Vs, st.nzcv), "overflow flag set");
    // The wrapped result is negative AND V is set, so N == V: the signed
    // comparison still correctly reports MAX > -1.
    assert!(cond_holds(Cond::Gt, st.nzcv), "signed compare survives overflow");
}

#[test]
fn flags_32_bit() {
    let mut st = fresh();
    st.x[1] = 0x8000_0000; // negative as w register
    st.x[2] = 0;
    let i = Inst::AddSubShifted {
        sub: true,
        set_flags: true,
        sf: false,
        rd: 31,
        rn: 1,
        rm: 2,
        shift: ShiftType::Lsl,
        amount: 0,
    };
    run1(i, &mut st);
    assert!(cond_holds(Cond::Mi, st.nzcv), "w-width sign bit drives N");
}

#[test]
fn csel_family() {
    let mut st = fresh();
    st.x[1] = 10;
    st.x[2] = 20;
    st.nzcv = 0b0100; // Z set
    let ri = run1(
        Inst::CondSel { op: CselOp::Csel, sf: true, rd: 0, rn: 1, rm: 2, cond: Cond::Eq },
        &mut st,
    );
    assert_eq!(st.x[0], 10);
    assert!(ri.srcs.contains(RegId::Flags));
    run1(
        Inst::CondSel { op: CselOp::Csinc, sf: true, rd: 0, rn: 1, rm: 2, cond: Cond::Ne },
        &mut st,
    );
    assert_eq!(st.x[0], 21, "csinc picks rm+1 when cond fails");
    run1(
        Inst::CondSel { op: CselOp::Csneg, sf: true, rd: 0, rn: 1, rm: 2, cond: Cond::Ne },
        &mut st,
    );
    assert_eq!(st.x[0] as i64, -20);
}

#[test]
fn cset_idiom() {
    // cset xd, cond == csinc xd, xzr, xzr, invert(cond)
    let mut st = fresh();
    st.nzcv = 0b0100; // Z
    run1(
        Inst::CondSel { op: CselOp::Csinc, sf: true, rd: 3, rn: 31, rm: 31, cond: Cond::Ne },
        &mut st,
    );
    assert_eq!(st.x[3], 1, "cset eq with Z set gives 1");
}

#[test]
fn ccmp_behaviour() {
    let mut st = fresh();
    st.x[1] = 5;
    st.x[2] = 5;
    st.nzcv = 0b0100; // Z: EQ holds -> perform the compare
    run1(
        Inst::CondCmpReg { negative: false, sf: true, rn: 1, rm: 2, nzcv: 0b0000, cond: Cond::Eq },
        &mut st,
    );
    assert!(cond_holds(Cond::Eq, st.nzcv), "5 == 5");
    // Condition fails -> flags come from the immediate.
    st.nzcv = 0;
    run1(
        Inst::CondCmpReg { negative: false, sf: true, rn: 1, rm: 2, nzcv: 0b1010, cond: Cond::Eq },
        &mut st,
    );
    assert_eq!(st.nzcv, 0b1010);
}

#[test]
fn movz_movn_movk() {
    let mut st = fresh();
    run1(Inst::MovWide { op: MovOp::Movz, sf: true, rd: 1, imm16: 0xABCD, hw: 1 }, &mut st);
    assert_eq!(st.x[1], 0xABCD_0000);
    run1(Inst::MovWide { op: MovOp::Movk, sf: true, rd: 1, imm16: 0x1234, hw: 0 }, &mut st);
    assert_eq!(st.x[1], 0xABCD_1234);
    let ri = run1(Inst::MovWide { op: MovOp::Movn, sf: true, rd: 2, imm16: 0, hw: 0 }, &mut st);
    assert_eq!(st.x[2], u64::MAX);
    assert!(ri.srcs.is_empty(), "movn reads nothing");
}

#[test]
fn movk_reports_rd_as_source() {
    let mut st = fresh();
    let ri = run1(Inst::MovWide { op: MovOp::Movk, sf: true, rd: 1, imm16: 1, hw: 0 }, &mut st);
    assert!(ri.srcs.contains(RegId::Int(1)), "movk merges into rd");
}

#[test]
fn bitfield_aliases() {
    let mut st = fresh();
    st.x[1] = 0xFF;
    // lsl x0, x1, #4 == ubfm x0, x1, #60, #59
    run1(
        Inst::Bitfield { op: BitfieldOp::Ubfm, sf: true, rd: 0, rn: 1, immr: 60, imms: 59 },
        &mut st,
    );
    assert_eq!(st.x[0], 0xFF0);
    // lsr x0, x1, #4 == ubfm x0, x1, #4, #63
    run1(
        Inst::Bitfield { op: BitfieldOp::Ubfm, sf: true, rd: 0, rn: 1, immr: 4, imms: 63 },
        &mut st,
    );
    assert_eq!(st.x[0], 0xF);
    // asr x0, x1, #4 with negative value
    st.x[1] = (-256i64) as u64;
    run1(
        Inst::Bitfield { op: BitfieldOp::Sbfm, sf: true, rd: 0, rn: 1, immr: 4, imms: 63 },
        &mut st,
    );
    assert_eq!(st.x[0] as i64, -16);
    // sxtw x0, w1
    st.x[1] = 0x8000_0000;
    run1(
        Inst::Bitfield { op: BitfieldOp::Sbfm, sf: true, rd: 0, rn: 1, immr: 0, imms: 31 },
        &mut st,
    );
    assert_eq!(st.x[0] as i64, i32::MIN as i64);
    // ubfx x0, x1, #8, #8
    st.x[1] = 0x00AB_CD00;
    run1(
        Inst::Bitfield { op: BitfieldOp::Ubfm, sf: true, rd: 0, rn: 1, immr: 8, imms: 15 },
        &mut st,
    );
    assert_eq!(st.x[0], 0xCD);
}

#[test]
fn extr_ror() {
    let mut st = fresh();
    st.x[1] = 0x1234_5678_9ABC_DEF0;
    run1(Inst::Extr { sf: true, rd: 0, rn: 1, rm: 1, lsb: 16 }, &mut st);
    assert_eq!(st.x[0], 0xDEF0_1234_5678_9ABC);
}

#[test]
fn mul_div_semantics() {
    let mut st = fresh();
    st.x[1] = 7;
    st.x[2] = 6;
    st.x[3] = 100;
    run1(Inst::MulAdd { sub: false, sf: true, rd: 0, rn: 1, rm: 2, ra: 3 }, &mut st);
    assert_eq!(st.x[0], 142);
    run1(Inst::MulAdd { sub: true, sf: true, rd: 0, rn: 1, rm: 2, ra: 3 }, &mut st);
    assert_eq!(st.x[0], 58);
    // Division by zero yields 0 on A64 (no trap).
    st.x[2] = 0;
    run1(Inst::Div { unsigned: false, sf: true, rd: 0, rn: 1, rm: 2 }, &mut st);
    assert_eq!(st.x[0], 0);
    // smulh
    st.x[1] = u64::MAX;
    st.x[2] = u64::MAX;
    run1(Inst::MulHigh { unsigned: false, rd: 0, rn: 1, rm: 2 }, &mut st);
    assert_eq!(st.x[0], 0);
    run1(Inst::MulHigh { unsigned: true, rd: 0, rn: 1, rm: 2 }, &mut st);
    assert_eq!(st.x[0], u64::MAX - 1);
}

#[test]
fn widening_multiplies() {
    let mut st = fresh();
    st.x[1] = 0xFFFF_FFFF; // -1 as w
    st.x[2] = 2;
    run1(
        Inst::MulAddLong { sub: false, unsigned: false, rd: 0, rn: 1, rm: 2, ra: 31 },
        &mut st,
    );
    assert_eq!(st.x[0] as i64, -2, "smull sign-extends");
    run1(
        Inst::MulAddLong { sub: false, unsigned: true, rd: 0, rn: 1, rm: 2, ra: 31 },
        &mut st,
    );
    assert_eq!(st.x[0], 0x1_FFFF_FFFE, "umull zero-extends");
}

#[test]
fn unary_ops() {
    let mut st = fresh();
    st.x[1] = 0x0000_0000_0000_00F0;
    run1(Inst::Unary1 { op: Unary1Op::Clz, sf: true, rd: 0, rn: 1 }, &mut st);
    assert_eq!(st.x[0], 56);
    run1(Inst::Unary1 { op: Unary1Op::Rbit, sf: true, rd: 0, rn: 1 }, &mut st);
    assert_eq!(st.x[0], 0x0F00_0000_0000_0000);
    st.x[1] = 0x0102_0304_0506_0708;
    run1(Inst::Unary1 { op: Unary1Op::Rev, sf: true, rd: 0, rn: 1 }, &mut st);
    assert_eq!(st.x[0], 0x0807_0605_0403_0201);
}

#[test]
fn branches() {
    let mut st = fresh();
    st.pc = 0x1000;
    let ri = run1(Inst::B { link: true, offset: 0x100 }, &mut st);
    assert_eq!(st.pc, 0x1100);
    assert_eq!(st.x[30], 0x1004);
    assert!(ri.taken);
    // b.cond not taken
    st.nzcv = 0;
    st.pc = 0x1000;
    let ri = run1(Inst::BCond { cond: Cond::Eq, offset: 0x50 }, &mut st);
    assert!(!ri.taken);
    assert_eq!(st.pc, 0x1004);
    assert!(ri.srcs.contains(RegId::Flags));
    // cbnz taken
    st.x[5] = 1;
    st.pc = 0x1000;
    let ri = run1(Inst::Cbz { nonzero: true, sf: true, rt: 5, offset: -16 }, &mut st);
    assert!(ri.taken);
    assert_eq!(st.pc, 0xFF0);
    // tbz on bit 7
    st.x[5] = 0x80;
    st.pc = 0x1000;
    let ri = run1(Inst::Tbz { nonzero: true, rt: 5, bit: 7, offset: 8 }, &mut st);
    assert!(ri.taken);
    assert_eq!(st.pc, 0x1008);
}

#[test]
fn loads_stores_addressing_modes() {
    let mut st = fresh();
    st.x[1] = 0x1000;
    st.x[2] = 0xDEAD_BEEF;
    // str x2, [x1, #8]
    run1(Inst::StrImm { size: MemSize::X, rt: 2, rn: 1, imm12: 1 }, &mut st);
    assert_eq!(st.mem.read_u64(0x1008).unwrap(), 0xDEAD_BEEF);
    // ldr with register offset and shift
    st.x[3] = 1;
    run1(
        Inst::LdrReg { size: MemSize::X, rt: 4, rn: 1, rm: 3, extend: Extend::Uxtx, shift: true },
        &mut st,
    );
    assert_eq!(st.x[4], 0xDEAD_BEEF);
    // Pre-index: updates base before access.
    st.x[1] = 0x1000;
    let ri = run1(
        Inst::LdrIdx { size: MemSize::X, mode: IndexMode::Pre, rt: 5, rn: 1, simm9: 8 },
        &mut st,
    );
    assert_eq!(st.x[5], 0xDEAD_BEEF);
    assert_eq!(st.x[1], 0x1008, "writeback");
    assert!(ri.dsts.contains(RegId::Int(1)), "base register is a destination");
    // Post-index: access at base, then update.
    st.x[1] = 0x1008;
    run1(
        Inst::LdrIdx { size: MemSize::X, mode: IndexMode::Post, rt: 6, rn: 1, simm9: 8 },
        &mut st,
    );
    assert_eq!(st.x[6], 0xDEAD_BEEF);
    assert_eq!(st.x[1], 0x1010);
}

#[test]
fn sign_extending_loads() {
    let mut st = fresh();
    st.x[1] = 0x2000;
    st.mem.write_u32(0x2000, 0x8000_0001).unwrap();
    run1(Inst::LdrImm { size: MemSize::Sw, rt: 2, rn: 1, imm12: 0 }, &mut st);
    assert_eq!(st.x[2] as i64, 0x8000_0001u32 as i32 as i64);
    run1(Inst::LdrImm { size: MemSize::W, rt: 2, rn: 1, imm12: 0 }, &mut st);
    assert_eq!(st.x[2], 0x8000_0001);
}

#[test]
fn pair_ops() {
    let mut st = fresh();
    st.x[1] = 0x3000;
    st.x[2] = 111;
    st.x[3] = 222;
    run1(Inst::Stp { sf: true, mode: None, rt: 2, rt2: 3, rn: 1, imm7: 2 }, &mut st);
    assert_eq!(st.mem.read_u64(0x3010).unwrap(), 111);
    assert_eq!(st.mem.read_u64(0x3018).unwrap(), 222);
    run1(Inst::Ldp { sf: true, mode: None, rt: 4, rt2: 5, rn: 1, imm7: 2 }, &mut st);
    assert_eq!(st.x[4], 111);
    assert_eq!(st.x[5], 222);
}

#[test]
fn fp_arithmetic_and_flags() {
    let mut st = fresh();
    st.set_fd(1, 2.0);
    st.set_fd(2, 3.0);
    run1(Inst::FpBin { op: FpBinOp::Fadd, size: FpSize::D, rd: 0, rn: 1, rm: 2 }, &mut st);
    assert_eq!(st.fd(0), 5.0);
    st.set_fd(3, 10.0);
    run1(
        Inst::FpFma { op: FpFmaOp::Fmadd, size: FpSize::D, rd: 0, rn: 1, rm: 2, ra: 3 },
        &mut st,
    );
    assert_eq!(st.fd(0), 16.0);
    run1(
        Inst::FpFma { op: FpFmaOp::Fmsub, size: FpSize::D, rd: 0, rn: 1, rm: 2, ra: 3 },
        &mut st,
    );
    assert_eq!(st.fd(0), 4.0, "fmsub is ra - rn*rm");
    // fcmp sets flags; fcsel reads them.
    let ri = run1(Inst::Fcmp { size: FpSize::D, rn: 1, rm: 2, zero: false }, &mut st);
    assert!(ri.dsts.contains(RegId::Flags));
    assert!(cond_holds(Cond::Lt, st.nzcv), "2.0 < 3.0 -> LT (through MI)");
    run1(
        Inst::Fcsel { size: FpSize::D, rd: 4, rn: 1, rm: 2, cond: Cond::Lt },
        &mut st,
    );
    assert_eq!(st.fd(4), 2.0);
    // NaN compare is unordered: C and V.
    st.set_fd(1, f64::NAN);
    run1(Inst::Fcmp { size: FpSize::D, rn: 1, rm: 2, zero: false }, &mut st);
    assert!(cond_holds(Cond::Vs, st.nzcv));
    assert!(!cond_holds(Cond::Eq, st.nzcv));
}

#[test]
fn fp_conversions() {
    let mut st = fresh();
    st.x[1] = (-7i64) as u64;
    run1(Inst::IntToFp { unsigned: false, sf: true, size: FpSize::D, rd: 0, rn: 1 }, &mut st);
    assert_eq!(st.fd(0), -7.0);
    st.set_fd(1, -2.9);
    run1(Inst::FpToInt { unsigned: false, sf: true, size: FpSize::D, rd: 2, rn: 1 }, &mut st);
    assert_eq!(st.x[2] as i64, -2, "fcvtzs truncates toward zero");
    st.set_fd(1, f64::NAN);
    run1(Inst::FpToInt { unsigned: false, sf: true, size: FpSize::D, rd: 2, rn: 1 }, &mut st);
    assert_eq!(st.x[2], 0, "A64 converts NaN to 0");
    // fmov bit transfer
    st.x[1] = 0x4008_0000_0000_0000;
    run1(Inst::FmovIntFp { to_fp: true, sf: true, size: FpSize::D, rd: 3, rn: 1 }, &mut st);
    assert_eq!(st.fd(3), 3.0);
    // fcvt d->s->d
    st.set_fd(1, 1.5);
    run1(Inst::FcvtPrec { to: FpSize::S, from: FpSize::D, rd: 2, rn: 1 }, &mut st);
    run1(Inst::FcvtPrec { to: FpSize::D, from: FpSize::S, rd: 3, rn: 2 }, &mut st);
    assert_eq!(st.fd(3), 1.5);
}

#[test]
fn fp_minmax_nan_semantics() {
    let mut st = fresh();
    st.set_fd(1, 1.0);
    st.set_fd(2, f64::NAN);
    run1(Inst::FpBin { op: FpBinOp::Fmax, size: FpSize::D, rd: 0, rn: 1, rm: 2 }, &mut st);
    assert!(st.fd(0).is_nan(), "fmax propagates NaN");
    run1(Inst::FpBin { op: FpBinOp::Fmaxnm, size: FpSize::D, rd: 0, rn: 1, rm: 2 }, &mut st);
    assert_eq!(st.fd(0), 1.0, "fmaxnm drops NaN");
}

#[test]
fn sp_vs_zr_selection() {
    let mut st = fresh();
    st.x[31] = 0x8000; // SP
    // add x0, sp, #16 uses SP.
    run1(
        Inst::AddSubImm {
            sub: false,
            set_flags: false,
            sf: true,
            rd: 0,
            rn: 31,
            imm12: 16,
            shift12: false,
        },
        &mut st,
    );
    assert_eq!(st.x[0], 0x8010);
    // add x0, xzr, x1 (shifted-register form) uses ZR.
    st.x[1] = 5;
    run1(add_shifted(false, false, 0, 31, 1), &mut st);
    assert_eq!(st.x[0], 5);
}

#[test]
fn svc_exit() {
    let mut st = fresh();
    st.x[8] = 93;
    st.x[0] = 17;
    run1(Inst::Svc { imm16: 0 }, &mut st);
    assert_eq!(st.exited, Some(17));
}

#[test]
fn adr_adrp() {
    let mut st = fresh();
    st.pc = 0x1_0804;
    run1(Inst::Adr { rd: 1, offset: 0x10 }, &mut st);
    assert_eq!(st.x[1], 0x1_0814);
    st.pc = 0x1_0804;
    run1(Inst::Adrp { rd: 1, offset: 0x2000 }, &mut st);
    assert_eq!(st.x[1], 0x1_2000, "adrp is page-aligned");
}
