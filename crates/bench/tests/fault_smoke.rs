//! Smoke-test the `make_tables` binary's fault tolerance: with one cell
//! deterministically faulted, the run still completes, prints the other
//! cells, marks the faulty one `ERR(<kind>)`, records the failure in the
//! metrics report, and only `--strict` flips the exit code.

use std::path::PathBuf;
use std::process::Command;

/// Run `make_tables` with `args` in a fresh scratch directory (the binary
/// writes `results/` into its cwd). Returns (exit code, stdout, stderr).
fn make_tables(scratch: &str, args: &[&str]) -> (i32, String, String) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(scratch);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let out = Command::new(env!("CARGO_BIN_EXE_make_tables"))
        .args(args)
        .current_dir(&dir)
        .output()
        .expect("make_tables runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const INJECT: &str = "STREAM/gcc-12.2/RISC-V:trap@1000";

#[test]
fn injected_fault_degrades_gracefully() {
    let (code, stdout, stderr) = make_tables(
        "degrade",
        &["table1", "--size", "test", "--inject", INJECT, "--metrics", "metrics.json"],
    );
    assert_eq!(code, 0, "degraded run still exits 0 without --strict:\n{stderr}");

    // The faulty cell is marked, the other 19 still populate.
    assert!(stdout.contains("ERR(sim)"), "stdout should mark the faulted cell:\n{stdout}");
    for w in ["STREAM", "LBM", "minisweep", "miniBUDE", "CloverLeaf"] {
        assert!(stdout.contains(w), "table should still include {w}:\n{stdout}");
    }
    assert!(stderr.contains("1 of 20 cells failed"), "stderr summary:\n{stderr}");

    // The failure and the retry spent on it land in the metrics report.
    let metrics = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("degrade/metrics.json"),
    )
    .expect("metrics.json written");
    assert!(metrics.contains("cells_failed"), "metrics: {metrics}");
    assert!(metrics.contains("cell_retries"), "metrics: {metrics}");
    assert!(metrics.contains("faults_injected"), "metrics: {metrics}");

    // matrix.json carries the typed failure record.
    let matrix = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("degrade/results/matrix.json"),
    )
    .expect("matrix.json written");
    assert!(matrix.contains("\"failures\""), "matrix.json: {matrix}");
    assert!(matrix.contains("injected fault"), "matrix.json: {matrix}");
}

#[test]
fn strict_flips_the_exit_code() {
    let (code, _stdout, stderr) =
        make_tables("strict", &["table1", "--size", "test", "--inject", INJECT, "--strict"]);
    assert_eq!(code, 3, "--strict must fail the run on a degraded matrix:\n{stderr}");
    assert!(stderr.contains("--strict"), "stderr explains the exit:\n{stderr}");
}

#[test]
fn healthy_strict_run_passes() {
    let (code, stdout, _stderr) = make_tables("healthy", &["table1", "--size", "test", "--strict"]);
    assert_eq!(code, 0);
    assert!(!stdout.contains("ERR("), "no failures expected:\n{stdout}");
}

#[test]
fn bad_inject_spec_is_a_usage_error() {
    let (code, _stdout, stderr) =
        make_tables("badspec", &["table1", "--size", "test", "--inject", "nonsense"]);
    assert_eq!(code, 2, "malformed --inject is a usage error:\n{stderr}");
}
