//! Path-length measurement: total and per-kernel dynamic instruction
//! counts (the paper's §3).

use simcore::{Observer, Region, RetireSource, RetiredInst, SimError};

/// Streaming instruction counter with per-region attribution.
///
/// Regions come from the program image (named PC ranges per kernel); a
/// one-entry region cache makes the common case (tight loop inside one
/// kernel) a single range check.
pub struct PathLength {
    regions: Vec<Region>,
    counts: Vec<u64>,
    other: u64,
    total: u64,
    last_hit: usize,
}

impl PathLength {
    /// Create a counter for a program's regions.
    pub fn new(regions: &[Region]) -> Self {
        PathLength {
            regions: regions.to_vec(),
            counts: vec![0; regions.len()],
            other: 0,
            total: 0,
            last_hit: 0,
        }
    }

    /// Pump an entire retirement source (live run, replayed trace, or
    /// record slice) through this counter.
    pub fn consume(&mut self, source: &mut dyn RetireSource) -> Result<u64, SimError> {
        let mut obs: [&mut dyn Observer; 1] = [self];
        source.drive(&mut obs)
    }

    /// Total instructions retired (the paper's *path length*).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Instructions not attributable to any named region (setup, exit,
    /// harness glue).
    pub fn other(&self) -> u64 {
        self.other
    }

    /// Per-kernel counts, merging regions that share a name, in first
    /// appearance order.
    pub fn by_kernel(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for (r, &c) in self.regions.iter().zip(self.counts.iter()) {
            if !totals.contains_key(r.name.as_str()) {
                order.push(r.name.clone());
            }
            *totals.entry(r.name.as_str()).or_insert(0) += c;
        }
        order
            .into_iter()
            .map(|name| {
                let c = totals[name.as_str()];
                (name, c)
            })
            .collect()
    }
}

impl Observer for PathLength {
    #[inline]
    fn on_retire(&mut self, ri: &RetiredInst) {
        self.total += 1;
        if !self.regions.is_empty() {
            // Fast path: same region as the previous instruction.
            let r = &self.regions[self.last_hit];
            if r.contains(ri.pc) {
                self.counts[self.last_hit] += 1;
                return;
            }
            for (i, r) in self.regions.iter().enumerate() {
                if r.contains(ri.pc) {
                    self.counts[i] += 1;
                    self.last_hit = i;
                    return;
                }
            }
        }
        self.other += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{InstGroup, RetiredInst};

    fn ri(pc: u64) -> RetiredInst {
        RetiredInst::new(pc, InstGroup::IntAlu)
    }

    #[test]
    fn attributes_to_regions() {
        let regions = vec![
            Region { name: "a".into(), start: 0x100, end: 0x200 },
            Region { name: "b".into(), start: 0x200, end: 0x300 },
            Region { name: "a".into(), start: 0x400, end: 0x500 },
        ];
        let mut pl = PathLength::new(&regions);
        for pc in [0x100, 0x104, 0x250, 0x404, 0x50] {
            pl.on_retire(&ri(pc));
        }
        assert_eq!(pl.total(), 5);
        assert_eq!(pl.other(), 1);
        let by = pl.by_kernel();
        assert_eq!(by, vec![("a".to_string(), 3), ("b".to_string(), 1)]);
    }

    #[test]
    fn empty_regions_counts_everything_as_other() {
        let mut pl = PathLength::new(&[]);
        for pc in 0..10 {
            pl.on_retire(&ri(pc * 4));
        }
        assert_eq!(pl.total(), 10);
        assert_eq!(pl.other(), 10);
        assert!(pl.by_kernel().is_empty());
    }
}
