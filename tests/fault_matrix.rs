//! Fault tolerance end to end: an injected fault degrades exactly one
//! cell of the matrix while every other cell still measures, watchdogs
//! produce typed timeouts, and silent corruption is caught by the
//! checksum cross-check.

use isacmp::{
    run_cell_opts, run_matrix_opts, CellOptions, InjectSpec, IsaKind, MatrixOptions, Personality,
    ResultMatrix, SizeClass, Workload,
};

#[test]
fn injected_fault_degrades_one_cell_and_spares_the_rest() {
    let inject = InjectSpec::parse("STREAM/gcc-12.2/RISC-V:trap@1000").unwrap();
    let opts = MatrixOptions { inject: Some(inject), ..Default::default() };
    let m = run_matrix_opts(&[Workload::Stream, Workload::Lbm], SizeClass::Test, &opts);

    assert_eq!(m.cells.len(), 7, "seven healthy cells measured");
    assert_eq!(m.failures.len(), 1, "exactly the targeted cell failed");
    assert!(!m.is_complete());
    let f = m.get_failure("STREAM", "gcc-12.2", "RISC-V").expect("targeted failure recorded");
    assert_eq!(f.kind, "sim");
    assert!(f.detail.contains("injected fault"), "detail: {}", f.detail);
    // The healthy twin of the faulted cell is untouched.
    assert!(m.get("STREAM", "gcc-12.2", "AArch64").is_some());

    // Tables render the failure in place instead of dropping the run.
    let t1 = m.table1();
    assert!(t1.contains("ERR(sim)"), "table1 should mark the failed cell:\n{t1}");
    assert!(t1.contains("LBM"), "unaffected workloads still render");

    // The failure record survives the JSON round trip.
    let back = ResultMatrix::from_json(&m.to_json()).unwrap();
    assert_eq!(back.failures.len(), 1);
    assert_eq!(back.failures[0].kind, "sim");
    assert_eq!(back.cells.len(), 7);
}

#[test]
fn zero_deadline_is_a_typed_timeout() {
    let opts = CellOptions { deadline: Some(std::time::Duration::ZERO), ..Default::default() };
    let err = run_cell_opts(
        Workload::Stream,
        IsaKind::AArch64,
        &Personality::gcc122(),
        SizeClass::Test,
        &opts,
    )
    .expect_err("a zero wall-clock budget must trip the watchdog");
    assert_eq!(err.kind(), "timeout");
    assert!(!err.retryable(), "watchdog trips are deterministic; retrying wastes wall time");
}

#[test]
fn read_corruption_is_caught_by_the_checksum() {
    // Flip an exponent bit of the 40th read: the guest runs to completion
    // but its checksum must disagree with the reference interpreter. (A
    // low mantissa bit could round away in the checksum reduction; bit 62
    // cannot.)
    let fault = isacmp::FaultPlan::parse("read@40:62").unwrap();
    let opts = CellOptions { fault: Some(fault), ..Default::default() };
    let err = run_cell_opts(
        Workload::Stream,
        IsaKind::RiscV,
        &Personality::gcc122(),
        SizeClass::Test,
        &opts,
    )
    .expect_err("a corrupted read must not produce the reference checksum");
    // Depending on which load the fault lands on, the guest either faults
    // outright or silently corrupts data; both must surface as errors.
    assert!(
        matches!(err.kind(), "checksum" | "sim"),
        "unexpected failure kind {}: {err}",
        err.kind()
    );
}

#[test]
fn retries_rerun_the_cell_and_are_capped() {
    // A deterministic injected fault fails every attempt: with N retries
    // the harness runs 1 + N attempts, then records a typed failure.
    let tel = isacmp::telemetry::global();
    let before = tel.counter("cell_retries");
    let fault = isacmp::FaultPlan::parse("trap@1000").unwrap();
    let opts = CellOptions { retries: 2, fault: Some(fault), ..Default::default() };
    let err = run_cell_opts(
        Workload::Stream,
        IsaKind::RiscV,
        &Personality::gcc122(),
        SizeClass::Test,
        &opts,
    )
    .expect_err("deterministic fault fails every retry");
    assert_eq!(err.kind(), "sim");
    assert_eq!(tel.counter("cell_retries") - before, 2, "both granted retries were spent");
}
