//! A fast hasher for word-keyed maps on the analysis hot paths.
//!
//! The dependency analyses key hash maps by 8-byte-aligned guest addresses
//! and touch them once or twice per retired instruction — hundreds of
//! millions of lookups at paper scale. The default SipHash is DoS-hardened
//! but slow for this; a Fibonacci multiplicative hash is ample for
//! guest-address keys (the "attacker" is our own workload generator).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys.
#[derive(Default)]
pub struct WordHasher(u64);

impl Hasher for WordHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (not used by u64 keys, kept correct anyway).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // splitmix64 finalizer: excellent low-bit diffusion (hashbrown
        // selects buckets from the low bits) at a few cycles per key.
        let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// A `HashMap` keyed by guest words using [`WordHasher`].
pub type WordMap<V> = HashMap<u64, V, BuildHasherDefault<WordHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_behaves_like_hashmap() {
        let mut m: WordMap<u64> = WordMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 8, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 8)), Some(&i));
        }
        m.remove(&80);
        assert_eq!(m.get(&80), None);
    }

    #[test]
    fn aligned_addresses_spread() {
        // 8-byte-aligned keys must not collapse onto few buckets: check the
        // low bits of hashes differ across a stride-8 sequence.
        use std::hash::Hash;
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = WordHasher::default();
            (i * 8).hash(&mut h);
            low_bits.insert(h.finish() & 0x3F);
        }
        assert!(low_bits.len() > 32, "only {} distinct low-6-bit patterns", low_bits.len());
    }
}
