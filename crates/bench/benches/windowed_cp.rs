//! Experiment E4 (paper Figure 2): windowed critical-path analysis across
//! the paper's window sizes (GCC 12.2 binaries only, per the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isacmp::{compile, execute, IsaKind, Personality, SizeClass, WindowedCp, Workload};

fn bench_windowed(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_cp");
    group.sample_size(10);
    for w in Workload::ALL {
        for isa in [IsaKind::AArch64, IsaKind::RiscV] {
            let prog = w.build(SizeClass::Test);
            let compiled = compile(&prog, isa, &Personality::gcc122());
            let mut wcp = WindowedCp::paper();
            execute(&compiled, &mut [&mut wcp]);
            let series: Vec<(usize, f64)> =
                wcp.stats().iter().map(|s| (s.size, s.mean_ilp())).collect();
            println!("# fig2: {} {} mean_ilp_per_window={series:?}", w.name(), isacmp::isa_label(isa));
            group.bench_with_input(
                BenchmarkId::new(w.name(), isacmp::isa_label(isa)),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        let mut wcp = WindowedCp::paper();
                        execute(compiled, &mut [&mut wcp]);
                        wcp.stats().len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_windowed);
criterion_main!(benches);
