//! Persistent work-stealing worker pool for experiment cells.
//!
//! The matrix runner used to spin up a scoped thread pool per call
//! (`par_map`); an always-on daemon cannot afford that — every submitted
//! job would pay thread spawn/join latency, and two concurrent jobs would
//! oversubscribe the host with two pools. This module replaces it with a
//! single process-wide [`ShardPool`]: one worker per available core, each
//! owning a shard (its own `VecDeque` run queue). Submission round-robins
//! across shards; an idle worker first drains its own shard front-to-back
//! (FIFO, so batches finish roughly in submission order) and then *steals*
//! from the back of a sibling's shard, so one slow cell on a shard never
//! strands the tasks queued behind it while other workers sit idle.
//!
//! Two task-level guarantees mirror the old `par_map` contract:
//!
//! - **panic isolation** — every task runs under `catch_unwind`; a
//!   panicking cell poisons nothing and the worker moves on,
//! - **graceful shutdown** — a batch submitted with `heed_shutdown` skips
//!   (returns `None` for) every task that had not started when the
//!   process shutdown flag ([`simcore::shutdown`]) went up.
//!
//! Tasks must never block on the completion of *another* pool task (e.g.
//! by calling [`ShardPool::run_batch`] from inside a task): with every
//! worker parked on such a wait the queued task could never run. The
//! server keeps cache waits on connection threads for exactly this
//! reason.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::error::panic_message;
use simcore::shutdown;

/// A unit of work for the pool.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Point-in-time pool observability counters (served by `isacmpd` stats
/// frames and the load driver's report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker (and shard) count.
    pub workers: usize,
    /// Tasks queued but not yet started.
    pub queued: usize,
    /// Tasks executed since the pool started.
    pub executed: u64,
    /// Tasks a worker took from a sibling's shard.
    pub stolen: u64,
}

struct Inner {
    shards: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    /// Tasks enqueued and not yet popped by a worker.
    queued: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
    stop: AtomicBool,
    /// Pairs with `work_cv`: workers hold this while deciding to sleep,
    /// submitters take it before notifying, so a wakeup cannot fall into
    /// the check-then-wait window.
    gate: Mutex<()>,
    work_cv: Condvar,
}

impl Inner {
    fn pop_own(&self, me: usize) -> Option<Task> {
        let task = lock(&self.shards[me]).pop_front();
        if task.is_some() {
            self.queued.fetch_sub(1, Ordering::Relaxed);
        }
        task
    }

    fn steal(&self, me: usize) -> Option<Task> {
        let n = self.shards.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(task) = lock(&self.shards[victim]).pop_back() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A persistent pool of worker threads with per-shard run queues and
/// work stealing. One process-wide instance lives behind [`global`]; tests
/// may build private pools with [`ShardPool::new`].
pub struct ShardPool {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ShardPool {
    /// Build a pool with `workers` worker threads (clamped to at least 1),
    /// one shard each.
    pub fn new(workers: usize) -> ShardPool {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            gate: Mutex::new(()),
            work_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("shard-{me}"))
                    .spawn(move || worker_loop(&inner, me))
                    .expect("spawn pool worker")
            })
            .collect();
        ShardPool { inner, workers: Mutex::new(handles) }
    }

    /// Enqueue one task on the next shard (round-robin) and wake a worker.
    /// The task runs under `catch_unwind`; a panic is contained to it.
    pub fn submit(&self, task: Task) {
        let shard = self.inner.next.fetch_add(1, Ordering::Relaxed) % self.inner.shards.len();
        lock(&self.inner.shards[shard]).push_back(task);
        self.inner.queued.fetch_add(1, Ordering::Relaxed);
        let _g = lock(&self.inner.gate);
        self.inner.work_cv.notify_one();
    }

    /// Run a batch of tasks to completion, returning per-task outcomes in
    /// input order: `Some(Ok(r))` for a finished task, `Some(Err(msg))`
    /// for one that panicked, `None` for one skipped because the process
    /// shutdown flag was up when it reached a worker (`heed_shutdown`
    /// only). Blocks until every slot is resolved, so borrow-free tasks
    /// submitted here never outlive the call.
    pub fn run_batch<R: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send>>,
        heed_shutdown: bool,
    ) -> Vec<Option<Result<R, String>>> {
        enum Slot<R> {
            Pending,
            Skipped,
            Done(Result<R, String>),
        }
        struct Batch<R> {
            slots: Mutex<(Vec<Slot<R>>, usize)>,
            done_cv: Condvar,
        }
        let n = tasks.len();
        let batch = Arc::new(Batch::<R> {
            slots: Mutex::new(((0..n).map(|_| Slot::Pending).collect(), 0)),
            done_cv: Condvar::new(),
        });
        for (i, task) in tasks.into_iter().enumerate() {
            let batch = Arc::clone(&batch);
            self.submit(Box::new(move || {
                let slot = if heed_shutdown && shutdown::requested() {
                    Slot::Skipped
                } else {
                    Slot::Done(
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(task))
                            .map_err(panic_message),
                    )
                };
                let mut st = lock(&batch.slots);
                st.0[i] = slot;
                st.1 += 1;
                if st.1 == n {
                    batch.done_cv.notify_all();
                }
            }));
        }
        let mut st = lock(&batch.slots);
        while st.1 < n {
            st = batch
                .done_cv
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        std::mem::take(&mut st.0)
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(r) => Some(r),
                Slot::Skipped => None,
                Slot::Pending => Some(Err("worker died before filling its slot".into())),
            })
            .collect()
    }

    /// Current pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.inner.shards.len(),
            queued: self.inner.queued.load(Ordering::Relaxed),
            executed: self.inner.executed.load(Ordering::Relaxed),
            stolen: self.inner.stolen.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        {
            let _g = lock(&self.inner.gate);
            self.inner.work_cv.notify_all();
        }
        for h in std::mem::take(&mut *lock(&self.workers)) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner, me: usize) {
    loop {
        if let Some(task) = inner.pop_own(me).or_else(|| inner.steal(me)) {
            // Task-level containment: a panicking cell is that cell's
            // problem (the batch wrapper reports it), never the worker's.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            inner.executed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if inner.stop.load(Ordering::Relaxed) {
            break;
        }
        let g = lock(&inner.gate);
        if inner.queued.load(Ordering::Relaxed) == 0 && !inner.stop.load(Ordering::Relaxed) {
            // Timed wait as a backstop against any missed notify; the gate
            // protocol above should make it unnecessary.
            let _ = inner.work_cv.wait_timeout(g, Duration::from_millis(50));
        }
    }
}

/// The process-wide pool every matrix run and daemon job shares, sized to
/// the host's available parallelism and started on first use.
pub fn global() -> &'static ShardPool {
    static POOL: OnceLock<ShardPool> = OnceLock::new();
    POOL.get_or_init(|| {
        ShardPool::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(nums: &[u32]) -> Vec<Box<dyn FnOnce() -> u32 + Send>> {
        nums.iter()
            .map(|&n| {
                Box::new(move || {
                    if n == 2 {
                        panic!("boom on {n}");
                    }
                    n * 10
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect()
    }

    #[test]
    fn batch_keeps_order_and_isolates_panics() {
        let pool = ShardPool::new(3);
        let out = pool.run_batch(batch_of(&[1, 2, 3]), false);
        assert_eq!(out[0], Some(Ok(10)));
        assert!(out[1]
            .as_ref()
            .is_some_and(|r| r.as_ref().is_err_and(|m| m.contains("boom on 2"))));
        assert_eq!(out[2], Some(Ok(30)));
        // `executed` ticks after the batch slot fills; wait it out.
        while pool.stats().executed < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.executed, 3);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn single_worker_pool_still_completes_batches() {
        let pool = ShardPool::new(1);
        let out = pool.run_batch(batch_of(&[1, 3, 4]), false);
        assert_eq!(out, vec![Some(Ok(10)), Some(Ok(30)), Some(Ok(40))]);
    }

    #[test]
    fn idle_workers_steal_queued_tasks() {
        // 2 workers, 8 tasks: round-robin puts 4 on each shard. Park shard
        // 0's worker in a slow task; the other worker must steal shard 0's
        // remaining tasks or the barrier below never opens.
        let pool = ShardPool::new(2);
        let slow = Arc::new(std::sync::Barrier::new(2));
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                let slow = Arc::clone(&slow);
                Box::new(move || {
                    if i == 0 {
                        slow.wait();
                    }
                    i
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        // Task 0 blocks its worker until task 7 (queued behind it on the
        // same shard or the sibling's) has run — only stealing gets there.
        let pool = Arc::new(pool);
        let p2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || p2.run_batch(tasks, false));
        // Release the barrier from outside once the other 7 are done.
        loop {
            if pool.stats().executed >= 7 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        slow.wait();
        let out = waiter.join().unwrap();
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|o| matches!(o, Some(Ok(_)))));
        assert!(pool.stats().stolen > 0, "sibling must have stolen work");
    }

    // The only test in this crate that raises the process-wide shutdown
    // flag (every other caller passes heed_shutdown=false), and it runs on
    // a private pool, so no lock is needed against parallel tests.
    #[test]
    fn heeding_batch_skips_tasks_after_shutdown() {
        let pool = ShardPool::new(2);
        shutdown::request();
        let out = pool.run_batch(batch_of(&[1, 3]), true);
        shutdown::reset();
        assert!(out.iter().all(Option::is_none), "no task runs once the flag is up");
        let out = pool.run_batch(batch_of(&[1, 3]), true);
        assert_eq!(out, vec![Some(Ok(10)), Some(Ok(30))]);
    }
}
