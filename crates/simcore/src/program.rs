//! Loadable guest program images.
//!
//! The `kernelgen` assembler back-ends produce [`Program`]s: a set of
//! sections (text + data), an entry point, and a list of named code
//! [`Region`]s used by the per-kernel path-length breakdown of the paper's
//! Figure 1. This replaces SimEng's ELF loader — our "binaries" never leave
//! the process, so a raw section list is sufficient and keeps the loader
//! trivially correct.

use crate::error::SimError;
use crate::state::CpuState;

/// Which instruction set a program image targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaKind {
    /// RISC-V RV64G (RV64IMAFD).
    RiscV,
    /// AArch64 (Armv8-a scalar subset, `+nosimd`).
    AArch64,
}

impl std::fmt::Display for IsaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaKind::RiscV => write!(f, "RISC-V"),
            IsaKind::AArch64 => write!(f, "AArch64"),
        }
    }
}

/// A contiguous chunk of the program image.
#[derive(Debug, Clone)]
pub struct Section {
    /// Load address.
    pub addr: u64,
    /// Raw bytes (text or data).
    pub bytes: Vec<u8>,
    /// Human-readable name (".text", ".data", ...).
    pub name: String,
}

/// A named PC range used to attribute retired instructions to source
/// kernels (half-open: `start <= pc < end`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Kernel name as reported in Figure 1 (e.g. "copy", "triad").
    pub name: String,
    /// First PC of the region.
    pub start: u64,
    /// One past the last PC of the region.
    pub end: u64,
}

impl Region {
    /// Whether `pc` lies inside the region.
    #[inline]
    pub fn contains(&self, pc: u64) -> bool {
        pc >= self.start && pc < self.end
    }
}

/// A statically linked guest program image.
#[derive(Debug, Clone)]
pub struct Program {
    /// Target instruction set.
    pub isa: IsaKind,
    /// Entry-point PC.
    pub entry: u64,
    /// Initial stack pointer.
    pub initial_sp: u64,
    /// Sections to map before execution.
    pub sections: Vec<Section>,
    /// Named kernel regions for per-kernel attribution.
    pub regions: Vec<Region>,
}

impl Program {
    /// Default stack top used when a program does not specify one.
    pub const DEFAULT_STACK_TOP: u64 = 0x7FFF_F000;

    /// Create an empty program targeting `isa`.
    pub fn new(isa: IsaKind) -> Self {
        Program {
            isa,
            entry: 0,
            initial_sp: Self::DEFAULT_STACK_TOP,
            sections: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// Map all sections into `state`'s memory, set the entry PC and stack
    /// pointer (`x2` on RISC-V, `x31`-as-SP on AArch64 — the loader sets
    /// both; each ISA only reads its own).
    pub fn load(&self, state: &mut CpuState) -> Result<(), SimError> {
        for s in &self.sections {
            state.mem.write_bytes(s.addr, &s.bytes)?;
        }
        state.pc = self.entry;
        state.x[2] = self.initial_sp; // RISC-V sp
        state.x[31] = self.initial_sp; // AArch64 SP
        // Pre-touch the top stack page so the first frame's loads are mapped.
        state.mem.write_u64(self.initial_sp - 8, 0)?;
        Ok(())
    }

    /// Total size in bytes of all sections.
    pub fn image_size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    /// Find the region containing `pc`, if any.
    pub fn region_of(&self, pc: u64) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_maps_sections_and_entry() {
        let mut p = Program::new(IsaKind::RiscV);
        p.entry = 0x1_0000;
        p.sections.push(Section {
            addr: 0x1_0000,
            bytes: vec![0x13, 0, 0, 0], // nop (addi x0,x0,0)
            name: ".text".into(),
        });
        let mut st = CpuState::new();
        p.load(&mut st).unwrap();
        assert_eq!(st.pc, 0x1_0000);
        assert_eq!(st.mem.read_u32(0x1_0000).unwrap(), 0x13);
        assert_eq!(st.x[2], Program::DEFAULT_STACK_TOP);
    }

    #[test]
    fn region_lookup() {
        let mut p = Program::new(IsaKind::AArch64);
        p.regions.push(Region {
            name: "copy".into(),
            start: 0x100,
            end: 0x140,
        });
        p.regions.push(Region {
            name: "scale".into(),
            start: 0x140,
            end: 0x180,
        });
        assert_eq!(p.region_of(0x100).unwrap().name, "copy");
        assert_eq!(p.region_of(0x13C).unwrap().name, "copy");
        assert_eq!(p.region_of(0x140).unwrap().name, "scale");
        assert!(p.region_of(0x80).is_none());
    }
}
