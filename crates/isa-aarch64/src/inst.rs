//! Decoded A64 instruction representation (scalar subset).

use simcore::InstGroup;

/// Condition codes for `B.cond`, `CSEL`, `CCMP`, `FCSEL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal (Z).
    Eq,
    /// Not equal (!Z).
    Ne,
    /// Carry set / unsigned higher-or-same (C).
    Cs,
    /// Carry clear / unsigned lower (!C).
    Cc,
    /// Minus / negative (N).
    Mi,
    /// Plus / non-negative (!N).
    Pl,
    /// Overflow (V).
    Vs,
    /// No overflow (!V).
    Vc,
    /// Unsigned higher (C && !Z).
    Hi,
    /// Unsigned lower-or-same (!C || Z).
    Ls,
    /// Signed greater-or-equal (N == V).
    Ge,
    /// Signed less (N != V).
    Lt,
    /// Signed greater (Z == 0 && N == V).
    Gt,
    /// Signed less-or-equal (Z || N != V).
    Le,
    /// Always.
    Al,
    /// Always (second encoding).
    Nv,
}

impl Cond {
    /// Decode a 4-bit condition field.
    pub fn from_bits(b: u32) -> Cond {
        match b & 0xF {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Cs,
            3 => Cond::Cc,
            4 => Cond::Mi,
            5 => Cond::Pl,
            6 => Cond::Vs,
            7 => Cond::Vc,
            8 => Cond::Hi,
            9 => Cond::Ls,
            10 => Cond::Ge,
            11 => Cond::Lt,
            12 => Cond::Gt,
            13 => Cond::Le,
            14 => Cond::Al,
            _ => Cond::Nv,
        }
    }

    /// Encode to the 4-bit condition field.
    pub fn bits(self) -> u32 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Cs => 2,
            Cond::Cc => 3,
            Cond::Mi => 4,
            Cond::Pl => 5,
            Cond::Vs => 6,
            Cond::Vc => 7,
            Cond::Hi => 8,
            Cond::Ls => 9,
            Cond::Ge => 10,
            Cond::Lt => 11,
            Cond::Gt => 12,
            Cond::Le => 13,
            Cond::Al => 14,
            Cond::Nv => 15,
        }
    }

    /// The inverted condition (`invert(EQ) == NE`).
    pub fn invert(self) -> Cond {
        Cond::from_bits(self.bits() ^ 1)
    }
}

/// Shift type for shifted-register operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftType {
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Rotate right (logical ops only).
    Ror,
}

/// Extend type for extended-register operands and register-offset loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extend {
    /// Unsigned extend byte.
    Uxtb,
    /// Unsigned extend halfword.
    Uxth,
    /// Unsigned extend word.
    Uxtw,
    /// Unsigned extend doubleword (identity; `LSL` in load syntax).
    Uxtx,
    /// Signed extend byte.
    Sxtb,
    /// Signed extend halfword.
    Sxth,
    /// Signed extend word.
    Sxtw,
    /// Signed extend doubleword (identity).
    Sxtx,
}

impl Extend {
    /// Decode the 3-bit option field.
    pub fn from_bits(b: u32) -> Extend {
        match b & 7 {
            0 => Extend::Uxtb,
            1 => Extend::Uxth,
            2 => Extend::Uxtw,
            3 => Extend::Uxtx,
            4 => Extend::Sxtb,
            5 => Extend::Sxth,
            6 => Extend::Sxtw,
            _ => Extend::Sxtx,
        }
    }

    /// Encode to the 3-bit option field.
    pub fn bits(self) -> u32 {
        match self {
            Extend::Uxtb => 0,
            Extend::Uxth => 1,
            Extend::Uxtw => 2,
            Extend::Uxtx => 3,
            Extend::Sxtb => 4,
            Extend::Sxth => 5,
            Extend::Sxtw => 6,
            Extend::Sxtx => 7,
        }
    }
}

/// Integer load/store access type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSize {
    /// 8-bit, zero-extending load (`ldrb`/`strb`).
    B,
    /// 16-bit, zero-extending load (`ldrh`/`strh`).
    H,
    /// 32-bit, zero-extending load (`ldr wN`/`str wN`).
    W,
    /// 64-bit (`ldr xN`/`str xN`).
    X,
    /// 8-bit, sign-extending to 64 bits (`ldrsb`).
    Sb,
    /// 16-bit, sign-extending to 64 bits (`ldrsh`).
    Sh,
    /// 32-bit, sign-extending to 64 bits (`ldrsw`).
    Sw,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u8 {
        match self {
            MemSize::B | MemSize::Sb => 1,
            MemSize::H | MemSize::Sh => 2,
            MemSize::W | MemSize::Sw => 4,
            MemSize::X => 8,
        }
    }

    /// Whether a load sign-extends.
    pub fn signed(self) -> bool {
        matches!(self, MemSize::Sb | MemSize::Sh | MemSize::Sw)
    }
}

/// FP scalar precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpSize {
    /// Single precision (`sN` registers).
    S,
    /// Double precision (`dN` registers).
    D,
}

impl FpSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u8 {
        match self {
            FpSize::S => 4,
            FpSize::D => 8,
        }
    }
}

/// Addressing mode for single-register loads/stores with a 9-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Pre-indexed: `[rn, #imm]!` — base updated before the access.
    Pre,
    /// Post-indexed: `[rn], #imm` — base updated after the access.
    Post,
    /// Unscaled offset (`ldur`/`stur`) — no base update.
    Unscaled,
}

/// Two-source FP arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpBinOp {
    /// `fadd`.
    Fadd,
    /// `fsub`.
    Fsub,
    /// `fmul`.
    Fmul,
    /// `fdiv`.
    Fdiv,
    /// `fmax` (IEEE maximum with NaN propagation).
    Fmax,
    /// `fmin`.
    Fmin,
    /// `fmaxnm` (maximumNumber: NaN loses).
    Fmaxnm,
    /// `fminnm`.
    Fminnm,
    /// `fnmul` — negated multiply.
    Fnmul,
}

/// One-source FP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpUnOp {
    /// `fmov` register move.
    Fmov,
    /// `fabs`.
    Fabs,
    /// `fneg`.
    Fneg,
    /// `fsqrt`.
    Fsqrt,
}

/// FP fused multiply-add family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpFmaOp {
    /// `fmadd` — `rn*rm + ra`.
    Fmadd,
    /// `fmsub` — `-(rn*rm) + ra`.
    Fmsub,
    /// `fnmadd` — `-(rn*rm) - ra`.
    Fnmadd,
    /// `fnmsub` — `rn*rm - ra`.
    Fnmsub,
}

/// Conditional select variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CselOp {
    /// `csel` — `cond ? rn : rm`.
    Csel,
    /// `csinc` — `cond ? rn : rm + 1`.
    Csinc,
    /// `csinv` — `cond ? rn : !rm`.
    Csinv,
    /// `csneg` — `cond ? rn : -rm`.
    Csneg,
}

/// Logical (shifted-register / immediate) operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicOp {
    /// `and`.
    And,
    /// `bic` — and with complement (register form only).
    Bic,
    /// `orr`.
    Orr,
    /// `orn` (register form only).
    Orn,
    /// `eor`.
    Eor,
    /// `eon` (register form only).
    Eon,
    /// `ands` — and, setting flags.
    Ands,
    /// `bics` (register form only).
    Bics,
}

/// Move-wide operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MovOp {
    /// `movn` — move inverted shifted immediate.
    Movn,
    /// `movz` — move shifted immediate, zeroing the rest.
    Movz,
    /// `movk` — insert immediate, keeping other bits.
    Movk,
}

/// One-source integer data-processing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unary1Op {
    /// `rbit` — reverse bits.
    Rbit,
    /// `rev16` — reverse bytes in halfwords.
    Rev16,
    /// `rev32` — reverse bytes in words (64-bit only).
    Rev32,
    /// `rev` — reverse all bytes.
    Rev,
    /// `clz` — count leading zeros.
    Clz,
    /// `cls` — count leading sign bits.
    Cls,
}

/// Bitfield-move variant (`sbfm`/`bfm`/`ubfm` — the substrate of the
/// `lsl #imm`, `lsr`, `asr`, `ubfx`, `sxtw`, ... aliases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitfieldOp {
    /// `sbfm` — signed.
    Sbfm,
    /// `bfm` — insert, keeping untouched bits.
    Bfm,
    /// `ubfm` — unsigned.
    Ubfm,
}

/// Variable-shift operation (`lslv` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftVOp {
    /// `lslv`.
    Lslv,
    /// `lsrv`.
    Lsrv,
    /// `asrv`.
    Asrv,
    /// `rorv`.
    Rorv,
}

/// A decoded A64 instruction.
///
/// `sf` selects 64-bit (`true`) or 32-bit (`false`) operand size.
/// Register number 31 means SP or ZR depending on the variant, following
/// the architectural rules (documented per variant in the executor).
/// Field names follow the Arm ARM's operand nomenclature (`rd`, `rn`,
/// `rm`, `rt`, `imm12`, `simm9`, ...), documented once here rather than
/// per field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Inst {
    /// `add`/`adds`/`sub`/`subs` (immediate). `shift12` applies `imm << 12`.
    /// `cmp rn, #imm` is `subs` with `rd == 31`.
    AddSubImm { sub: bool, set_flags: bool, sf: bool, rd: u8, rn: u8, imm12: u16, shift12: bool },
    /// `add`/`adds`/`sub`/`subs` (shifted register).
    AddSubShifted {
        sub: bool,
        set_flags: bool,
        sf: bool,
        rd: u8,
        rn: u8,
        rm: u8,
        shift: ShiftType,
        amount: u8,
    },
    /// `add`/`adds`/`sub`/`subs` (extended register).
    AddSubExtended {
        sub: bool,
        set_flags: bool,
        sf: bool,
        rd: u8,
        rn: u8,
        rm: u8,
        extend: Extend,
        amount: u8,
    },
    /// Logical operation with a bitmask immediate (`and`/`orr`/`eor`/`ands`).
    LogicalImm { op: LogicOp, sf: bool, rd: u8, rn: u8, imm: u64 },
    /// Logical operation, shifted register.
    LogicalShifted {
        op: LogicOp,
        sf: bool,
        rd: u8,
        rn: u8,
        rm: u8,
        shift: ShiftType,
        amount: u8,
    },
    /// `movn`/`movz`/`movk`.
    MovWide { op: MovOp, sf: bool, rd: u8, imm16: u16, hw: u8 },
    /// `adr` — PC-relative address (byte offset).
    Adr { rd: u8, offset: i64 },
    /// `adrp` — PC-relative page address (offset in 4 KiB pages, pre-shifted
    /// to a byte offset here).
    Adrp { rd: u8, offset: i64 },
    /// `sbfm`/`bfm`/`ubfm`.
    Bitfield { op: BitfieldOp, sf: bool, rd: u8, rn: u8, immr: u8, imms: u8 },
    /// `extr` (the `ror #imm` alias when `rn == rm`).
    Extr { sf: bool, rd: u8, rn: u8, rm: u8, lsb: u8 },
    /// `madd`/`msub` (`mul` is `madd` with `ra == 31`).
    MulAdd { sub: bool, sf: bool, rd: u8, rn: u8, rm: u8, ra: u8 },
    /// `smaddl`/`smsubl`/`umaddl`/`umsubl` — widening 32->64 multiply-add.
    MulAddLong { sub: bool, unsigned: bool, rd: u8, rn: u8, rm: u8, ra: u8 },
    /// `smulh`/`umulh`.
    MulHigh { unsigned: bool, rd: u8, rn: u8, rm: u8 },
    /// `sdiv`/`udiv`.
    Div { unsigned: bool, sf: bool, rd: u8, rn: u8, rm: u8 },
    /// `lslv`/`lsrv`/`asrv`/`rorv` (the `lsl rd, rn, rm` aliases).
    ShiftV { op: ShiftVOp, sf: bool, rd: u8, rn: u8, rm: u8 },
    /// One-source ops: `rbit`, `rev`, `clz`, ...
    Unary1 { op: Unary1Op, sf: bool, rd: u8, rn: u8 },
    /// `csel`/`csinc`/`csinv`/`csneg`.
    CondSel { op: CselOp, sf: bool, rd: u8, rn: u8, rm: u8, cond: Cond },
    /// `ccmp`/`ccmn` (register).
    CondCmpReg { negative: bool, sf: bool, rn: u8, rm: u8, nzcv: u8, cond: Cond },
    /// `ccmp`/`ccmn` (immediate).
    CondCmpImm { negative: bool, sf: bool, rn: u8, imm5: u8, nzcv: u8, cond: Cond },
    /// `b` / `bl`.
    B { link: bool, offset: i64 },
    /// `b.cond`.
    BCond { cond: Cond, offset: i64 },
    /// `cbz`/`cbnz`.
    Cbz { nonzero: bool, sf: bool, rt: u8, offset: i64 },
    /// `tbz`/`tbnz`.
    Tbz { nonzero: bool, rt: u8, bit: u8, offset: i64 },
    /// `br`/`blr`/`ret`.
    BrReg { link: bool, ret: bool, rn: u8 },
    /// Integer load, unsigned scaled 12-bit offset.
    LdrImm { size: MemSize, rt: u8, rn: u8, imm12: u16 },
    /// Integer store, unsigned scaled 12-bit offset.
    StrImm { size: MemSize, rt: u8, rn: u8, imm12: u16 },
    /// Integer load with writeback or unscaled offset (9-bit signed).
    LdrIdx { size: MemSize, mode: IndexMode, rt: u8, rn: u8, simm9: i16 },
    /// Integer store with writeback or unscaled offset.
    StrIdx { size: MemSize, mode: IndexMode, rt: u8, rn: u8, simm9: i16 },
    /// Integer load, register offset: `ldr rt, [rn, rm{, extend {#shift}}]`.
    LdrReg { size: MemSize, rt: u8, rn: u8, rm: u8, extend: Extend, shift: bool },
    /// Integer store, register offset.
    StrReg { size: MemSize, rt: u8, rn: u8, rm: u8, extend: Extend, shift: bool },
    /// Load pair (X registers only in this subset).
    Ldp { sf: bool, mode: Option<IndexMode>, rt: u8, rt2: u8, rn: u8, imm7: i16 },
    /// Store pair.
    Stp { sf: bool, mode: Option<IndexMode>, rt: u8, rt2: u8, rn: u8, imm7: i16 },
    /// FP load, unsigned scaled offset.
    LdrFpImm { size: FpSize, rt: u8, rn: u8, imm12: u16 },
    /// FP store, unsigned scaled offset.
    StrFpImm { size: FpSize, rt: u8, rn: u8, imm12: u16 },
    /// FP load with writeback/unscaled offset.
    LdrFpIdx { size: FpSize, mode: IndexMode, rt: u8, rn: u8, simm9: i16 },
    /// FP store with writeback/unscaled offset.
    StrFpIdx { size: FpSize, mode: IndexMode, rt: u8, rn: u8, simm9: i16 },
    /// FP load, register offset.
    LdrFpReg { size: FpSize, rt: u8, rn: u8, rm: u8, extend: Extend, shift: bool },
    /// FP store, register offset.
    StrFpReg { size: FpSize, rt: u8, rn: u8, rm: u8, extend: Extend, shift: bool },
    /// Two-source FP arithmetic.
    FpBin { op: FpBinOp, size: FpSize, rd: u8, rn: u8, rm: u8 },
    /// One-source FP operation.
    FpUn { op: FpUnOp, size: FpSize, rd: u8, rn: u8 },
    /// FP fused multiply-add.
    FpFma { op: FpFmaOp, size: FpSize, rd: u8, rn: u8, rm: u8, ra: u8 },
    /// `fcmp`/`fcmpe` (`zero` compares `rn` against +0.0).
    Fcmp { size: FpSize, rn: u8, rm: u8, zero: bool },
    /// `fcsel`.
    Fcsel { size: FpSize, rd: u8, rn: u8, rm: u8, cond: Cond },
    /// `fcvt` between S and D.
    FcvtPrec { to: FpSize, from: FpSize, rd: u8, rn: u8 },
    /// `scvtf`/`ucvtf` — integer to FP.
    IntToFp { unsigned: bool, sf: bool, size: FpSize, rd: u8, rn: u8 },
    /// `fcvtzs`/`fcvtzu` — FP to integer, round toward zero.
    FpToInt { unsigned: bool, sf: bool, size: FpSize, rd: u8, rn: u8 },
    /// `fmov` between integer and FP register files.
    FmovIntFp { to_fp: bool, sf: bool, size: FpSize, rd: u8, rn: u8 },
    /// `fmov` (scalar immediate) — the 256 representable VFP constants.
    FmovImm { size: FpSize, rd: u8, imm8: u8 },
    /// `nop`.
    Nop,
    /// `svc #imm` — supervisor call.
    Svc { imm16: u16 },
    /// `brk #imm` — breakpoint.
    Brk { imm16: u16 },
}

impl Inst {
    /// Latency/issue classification for the µarch models.
    pub fn group(&self) -> InstGroup {
        use Inst::*;
        match self {
            AddSubImm { .. } | AddSubShifted { .. } | AddSubExtended { .. } | MovWide { .. }
            | Adr { .. } | Adrp { .. } | CondSel { .. } | CondCmpReg { .. }
            | CondCmpImm { .. } => InstGroup::IntAlu,
            LogicalImm { .. } | LogicalShifted { .. } | Unary1 { .. } => InstGroup::Logical,
            Bitfield { .. } | Extr { .. } | ShiftV { .. } => InstGroup::Shift,
            MulAdd { .. } | MulAddLong { .. } | MulHigh { .. } => InstGroup::IntMul,
            Div { .. } => InstGroup::IntDiv,
            B { .. } | BCond { .. } | Cbz { .. } | Tbz { .. } | BrReg { .. } => InstGroup::Branch,
            LdrImm { .. } | LdrIdx { .. } | LdrReg { .. } | Ldp { .. } | LdrFpImm { .. }
            | LdrFpIdx { .. } | LdrFpReg { .. } => InstGroup::Load,
            StrImm { .. } | StrIdx { .. } | StrReg { .. } | Stp { .. } | StrFpImm { .. }
            | StrFpIdx { .. } | StrFpReg { .. } => InstGroup::Store,
            FpBin { op, .. } => match op {
                FpBinOp::Fadd | FpBinOp::Fsub => InstGroup::FpAdd,
                FpBinOp::Fmul | FpBinOp::Fnmul => InstGroup::FpMul,
                FpBinOp::Fdiv => InstGroup::FpDiv,
                _ => InstGroup::FpCmp,
            },
            FpUn { op, .. } => match op {
                FpUnOp::Fsqrt => InstGroup::FpSqrt,
                _ => InstGroup::FpMove,
            },
            FpFma { .. } => InstGroup::FpFma,
            Fcmp { .. } => InstGroup::FpCmp,
            Fcsel { .. } => InstGroup::FpCmp,
            FcvtPrec { .. } | IntToFp { .. } | FpToInt { .. } => InstGroup::FpCvt,
            FmovIntFp { .. } | FmovImm { .. } => InstGroup::FpMove,
            Nop | Svc { .. } | Brk { .. } => InstGroup::System,
        }
    }

    /// Whether this instruction may redirect control flow.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::B { .. } | Inst::BCond { .. } | Inst::Cbz { .. } | Inst::Tbz { .. } | Inst::BrReg { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_bits_round_trip() {
        for b in 0..16u32 {
            assert_eq!(Cond::from_bits(b).bits(), b);
        }
    }

    #[test]
    fn cond_inversion() {
        assert_eq!(Cond::Eq.invert(), Cond::Ne);
        assert_eq!(Cond::Ge.invert(), Cond::Lt);
        assert_eq!(Cond::Hi.invert(), Cond::Ls);
    }

    #[test]
    fn extend_bits_round_trip() {
        for b in 0..8u32 {
            assert_eq!(Extend::from_bits(b).bits(), b);
        }
    }

    #[test]
    fn groups() {
        assert_eq!(
            Inst::MulAdd { sub: false, sf: true, rd: 0, rn: 1, rm: 2, ra: 31 }.group(),
            InstGroup::IntMul
        );
        assert_eq!(
            Inst::LdrReg {
                size: MemSize::X,
                rt: 0,
                rn: 1,
                rm: 2,
                extend: Extend::Uxtx,
                shift: true
            }
            .group(),
            InstGroup::Load
        );
        assert!(Inst::BCond { cond: Cond::Ne, offset: -4 }.is_branch());
    }

    #[test]
    fn memsize_properties() {
        assert_eq!(MemSize::X.bytes(), 8);
        assert_eq!(MemSize::Sw.bytes(), 4);
        assert!(MemSize::Sw.signed());
        assert!(!MemSize::W.signed());
    }
}
