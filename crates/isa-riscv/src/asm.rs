//! Two-pass RV64G assembler with labels, data sections and kernel regions.
//!
//! The code generators in `kernelgen` drive this builder to produce real,
//! loadable machine-code images ([`simcore::Program`]). Every emitted item
//! occupies exactly one 32-bit word (multi-instruction pseudo-ops such as
//! `li`/`la` are expanded eagerly at push time), so label resolution is a
//! simple index-to-PC mapping.

use std::collections::HashMap;

use simcore::{IsaKind, Program, Region, Section};

use crate::encode::encode;
use crate::inst::*;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

enum Item {
    Fixed(Inst),
    BranchTo { op: BranchOp, rs1: u8, rs2: u8, label: Label },
    JalTo { rd: u8, label: Label },
}

/// RV64G assembler/builder.
pub struct RvAsm {
    text_base: u64,
    data_base: u64,
    items: Vec<Item>,
    labels: Vec<Option<usize>>,
    data: Vec<u8>,
    region_stack: Vec<(String, usize)>,
    regions: Vec<(String, usize, usize)>,
    entry_item: usize,
}

impl RvAsm {
    /// New assembler with text at `text_base` and data at `data_base`.
    ///
    /// `data_base` must stay below 2 GiB so `la` can materialise addresses
    /// with a `lui`+`addi` pair.
    pub fn new(text_base: u64, data_base: u64) -> Self {
        assert!(data_base < 0x8000_0000, "data must sit below 2 GiB for lui/addi la");
        assert_eq!(text_base & 3, 0);
        RvAsm {
            text_base,
            data_base,
            items: Vec::new(),
            labels: Vec::new(),
            data: Vec::new(),
            region_stack: Vec::new(),
            regions: Vec::new(),
            entry_item: 0,
        }
    }

    // ---- labels & regions -------------------------------------------------

    /// Allocate an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.items.len());
    }

    /// Begin a named kernel region (for the per-kernel path-length breakdown).
    pub fn begin_region(&mut self, name: &str) {
        self.region_stack.push((name.to_string(), self.items.len()));
    }

    /// End the innermost open region.
    pub fn end_region(&mut self) {
        let (name, start) = self.region_stack.pop().expect("no open region");
        self.regions.push((name, start, self.items.len()));
    }

    /// Mark the current position as the program entry point.
    pub fn set_entry_here(&mut self) {
        self.entry_item = self.items.len();
    }

    /// PC the next pushed instruction will occupy.
    pub fn here(&self) -> u64 {
        self.text_base + 4 * self.items.len() as u64
    }

    // ---- data section ------------------------------------------------------

    fn align_data(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Append raw bytes to the data section; returns their guest address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Append a 8-byte-aligned `u64`; returns its guest address.
    pub fn data_u64(&mut self, v: u64) -> u64 {
        self.align_data(8);
        self.data_bytes(&v.to_le_bytes())
    }

    /// Append an aligned `f64` array; returns its guest address.
    pub fn data_f64_array(&mut self, vals: &[f64]) -> u64 {
        self.align_data(8);
        let addr = self.data_base + self.data.len() as u64;
        for v in vals {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Reserve `len` zeroed bytes with the given alignment; returns the
    /// guest address (our loader zero-fills, so this doubles as `.bss`).
    pub fn data_zero(&mut self, len: usize, align: usize) -> u64 {
        self.align_data(align);
        let addr = self.data_base + self.data.len() as u64;
        self.data.resize(self.data.len() + len, 0);
        addr
    }

    // ---- raw pushes ----------------------------------------------------------

    /// Push an already-constructed instruction.
    pub fn push(&mut self, inst: Inst) {
        self.items.push(Item::Fixed(inst));
    }

    /// Push a conditional branch to a label.
    pub fn branch(&mut self, op: BranchOp, rs1: u8, rs2: u8, label: Label) {
        self.items.push(Item::BranchTo { op, rs1, rs2, label });
    }

    /// Push a `jal` to a label.
    pub fn jal_to(&mut self, rd: u8, label: Label) {
        self.items.push(Item::JalTo { rd, label });
    }

    // ---- integer convenience ---------------------------------------------

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.push(Inst::Op { op: RegOp::Add, rd, rs1, rs2 });
    }
    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.push(Inst::Op { op: RegOp::Sub, rd, rs1, rs2 });
    }
    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.push(Inst::Op { op: RegOp::Mul, rd, rs1, rs2 });
    }
    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i64) {
        assert!((-2048..2048).contains(&imm), "addi immediate out of range: {imm}");
        self.push(Inst::OpImm { op: ImmOp::Addi, rd, rs1, imm });
    }
    /// `mv rd, rs` (canonical `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: u8, rs: u8) {
        self.addi(rd, rs, 0);
    }
    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.push(Inst::OpImm { op: ImmOp::Slli, rd, rs1, imm: shamt });
    }
    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.push(Inst::OpImm { op: ImmOp::Srli, rd, rs1, imm: shamt });
    }
    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.push(Inst::OpImm { op: ImmOp::Srai, rd, rs1, imm: shamt });
    }
    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.push(Inst::OpImm { op: ImmOp::Andi, rd, rs1, imm });
    }
    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.push(Inst::Op { op: RegOp::Slt, rd, rs1, rs2 });
    }
    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.push(Inst::Op { op: RegOp::Sltu, rd, rs1, rs2 });
    }
    /// `ld rd, offset(rs1)`.
    pub fn ld(&mut self, rd: u8, rs1: u8, offset: i64) {
        self.push(Inst::Load { op: LoadOp::Ld, rd, rs1, offset });
    }
    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: u8, rs1: u8, offset: i64) {
        self.push(Inst::Load { op: LoadOp::Lw, rd, rs1, offset });
    }
    /// `sd rs2, offset(rs1)`.
    pub fn sd(&mut self, rs2: u8, rs1: u8, offset: i64) {
        self.push(Inst::Store { op: StoreOp::Sd, rs2, rs1, offset });
    }
    /// `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: u8, rs1: u8, offset: i64) {
        self.push(Inst::Store { op: StoreOp::Sw, rs2, rs1, offset });
    }
    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(0, 0, 0);
    }
    /// `ecall`.
    pub fn ecall(&mut self) {
        self.push(Inst::Ecall);
    }

    /// Materialise an arbitrary 64-bit constant into `rd` (1-8 words,
    /// lui/addi/slli chains exactly like GCC's `li` expansion).
    pub fn li(&mut self, rd: u8, imm: i64) {
        if (-2048..2048).contains(&imm) {
            self.addi(rd, 0, imm);
            return;
        }
        if imm >= i32::MIN as i64 && imm <= i32::MAX as i64 {
            let hi = (imm + 0x800) >> 12;
            let lo = imm - (hi << 12);
            self.push(Inst::Lui { rd, imm: hi << 12 });
            if lo != 0 {
                // addiw, not addi: the result must be the 32-bit sum
                // sign-extended (lui of 0x80000 wraps negative on RV64).
                self.push(Inst::OpImm32 { op: ImmOp32::Addiw, rd, rs1: rd, imm: lo });
            }
            return;
        }
        // General 64-bit constant: build the upper half then shift/or in
        // 12-bit chunks (GCC-style expansion, at most 8 instructions).
        let upper = imm >> 32;
        self.li(rd, upper);
        let mut remaining = 32;
        let low = imm as u32 as u64;
        while remaining > 0 {
            let chunk = remaining.min(11);
            remaining -= chunk;
            self.slli(rd, rd, chunk);
            let bits = ((low >> remaining) & ((1 << chunk) - 1)) as i64;
            if bits != 0 {
                self.addi(rd, rd, bits);
            }
        }
    }

    /// Load the address `addr` (< 2 GiB) into `rd` with `lui`+`addi`.
    pub fn la(&mut self, rd: u8, addr: u64) {
        assert!(addr < 0x8000_0000, "la requires a sub-2GiB address");
        let imm = addr as i64;
        let hi = (imm + 0x800) >> 12;
        let lo = imm - (hi << 12);
        self.push(Inst::Lui { rd, imm: hi << 12 });
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
    }

    // ---- branch convenience -------------------------------------------------

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, l: Label) {
        self.branch(BranchOp::Beq, rs1, rs2, l);
    }
    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, l: Label) {
        self.branch(BranchOp::Bne, rs1, rs2, l);
    }
    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: u8, rs2: u8, l: Label) {
        self.branch(BranchOp::Blt, rs1, rs2, l);
    }
    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: u8, rs2: u8, l: Label) {
        self.branch(BranchOp::Bge, rs1, rs2, l);
    }
    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: u8, rs2: u8, l: Label) {
        self.branch(BranchOp::Bltu, rs1, rs2, l);
    }
    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: u8, rs2: u8, l: Label) {
        self.branch(BranchOp::Bgeu, rs1, rs2, l);
    }
    /// Unconditional `j label` (`jal x0`).
    pub fn j(&mut self, l: Label) {
        self.jal_to(0, l);
    }

    // ---- FP convenience ------------------------------------------------------

    /// `fld frd, offset(rs1)`.
    pub fn fld(&mut self, frd: u8, rs1: u8, offset: i64) {
        self.push(Inst::FpLoad { width: FpWidth::D, frd, rs1, offset });
    }
    /// `fsd frs2, offset(rs1)`.
    pub fn fsd(&mut self, frs2: u8, rs1: u8, offset: i64) {
        self.push(Inst::FpStore { width: FpWidth::D, frs2, rs1, offset });
    }
    /// `fadd.d frd, frs1, frs2`.
    pub fn fadd_d(&mut self, frd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpReg { op: FpOp::Fadd, width: FpWidth::D, frd, frs1, frs2 });
    }
    /// `fsub.d frd, frs1, frs2`.
    pub fn fsub_d(&mut self, frd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpReg { op: FpOp::Fsub, width: FpWidth::D, frd, frs1, frs2 });
    }
    /// `fmul.d frd, frs1, frs2`.
    pub fn fmul_d(&mut self, frd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpReg { op: FpOp::Fmul, width: FpWidth::D, frd, frs1, frs2 });
    }
    /// `fdiv.d frd, frs1, frs2`.
    pub fn fdiv_d(&mut self, frd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpReg { op: FpOp::Fdiv, width: FpWidth::D, frd, frs1, frs2 });
    }
    /// `fsqrt.d frd, frs1`.
    pub fn fsqrt_d(&mut self, frd: u8, frs1: u8) {
        self.push(Inst::FpSqrt { width: FpWidth::D, frd, frs1 });
    }
    /// `fmadd.d frd, frs1, frs2, frs3` — `frs1*frs2 + frs3`.
    pub fn fmadd_d(&mut self, frd: u8, frs1: u8, frs2: u8, frs3: u8) {
        self.push(Inst::FpFma { op: FmaOp::Fmadd, width: FpWidth::D, frd, frs1, frs2, frs3 });
    }
    /// `fmsub.d frd, frs1, frs2, frs3` — `frs1*frs2 - frs3`.
    pub fn fmsub_d(&mut self, frd: u8, frs1: u8, frs2: u8, frs3: u8) {
        self.push(Inst::FpFma { op: FmaOp::Fmsub, width: FpWidth::D, frd, frs1, frs2, frs3 });
    }
    /// `fnmsub.d frd, frs1, frs2, frs3` — `-(frs1*frs2) + frs3`.
    pub fn fnmsub_d(&mut self, frd: u8, frs1: u8, frs2: u8, frs3: u8) {
        self.push(Inst::FpFma { op: FmaOp::Fnmsub, width: FpWidth::D, frd, frs1, frs2, frs3 });
    }
    /// `fmv.d frd, frs` (canonical `fsgnj.d frd, frs, frs`).
    pub fn fmv_d(&mut self, frd: u8, frs: u8) {
        self.push(Inst::FpReg { op: FpOp::Fsgnj, width: FpWidth::D, frd, frs1: frs, frs2: frs });
    }
    /// `fneg.d frd, frs` (canonical `fsgnjn.d frd, frs, frs`).
    pub fn fneg_d(&mut self, frd: u8, frs: u8) {
        self.push(Inst::FpReg { op: FpOp::Fsgnjn, width: FpWidth::D, frd, frs1: frs, frs2: frs });
    }
    /// `fabs.d frd, frs` (canonical `fsgnjx.d frd, frs, frs`).
    pub fn fabs_d(&mut self, frd: u8, frs: u8) {
        self.push(Inst::FpReg { op: FpOp::Fsgnjx, width: FpWidth::D, frd, frs1: frs, frs2: frs });
    }
    /// `fmin.d frd, frs1, frs2`.
    pub fn fmin_d(&mut self, frd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpReg { op: FpOp::Fmin, width: FpWidth::D, frd, frs1, frs2 });
    }
    /// `fmax.d frd, frs1, frs2`.
    pub fn fmax_d(&mut self, frd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpReg { op: FpOp::Fmax, width: FpWidth::D, frd, frs1, frs2 });
    }
    /// `fcvt.d.l frd, rs1` — signed 64-bit int to double.
    pub fn fcvt_d_l(&mut self, frd: u8, rs1: u8) {
        self.push(Inst::FcvtFpFromInt { ty: IntTy::L, width: FpWidth::D, frd, rs1 });
    }
    /// `fcvt.d.w frd, rs1` — signed 32-bit int to double.
    pub fn fcvt_d_w(&mut self, frd: u8, rs1: u8) {
        self.push(Inst::FcvtFpFromInt { ty: IntTy::W, width: FpWidth::D, frd, rs1 });
    }
    /// `fcvt.l.d rd, frs1` — double to signed 64-bit int (RTZ).
    pub fn fcvt_l_d(&mut self, rd: u8, frs1: u8) {
        self.push(Inst::FcvtIntFromFp { ty: IntTy::L, width: FpWidth::D, rd, frs1 });
    }
    /// `fcvt.w.d rd, frs1` — double to signed 32-bit int (RTZ).
    pub fn fcvt_w_d(&mut self, rd: u8, frs1: u8) {
        self.push(Inst::FcvtIntFromFp { ty: IntTy::W, width: FpWidth::D, rd, frs1 });
    }
    /// `flt.d rd, frs1, frs2`.
    pub fn flt_d(&mut self, rd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpCmp { op: FpCmpOp::Flt, width: FpWidth::D, rd, frs1, frs2 });
    }
    /// `fle.d rd, frs1, frs2`.
    pub fn fle_d(&mut self, rd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpCmp { op: FpCmpOp::Fle, width: FpWidth::D, rd, frs1, frs2 });
    }
    /// `feq.d rd, frs1, frs2`.
    pub fn feq_d(&mut self, rd: u8, frs1: u8, frs2: u8) {
        self.push(Inst::FpCmp { op: FpCmpOp::Feq, width: FpWidth::D, rd, frs1, frs2 });
    }

    /// Emit the Linux `exit(code)` sequence.
    pub fn exit(&mut self, code: i64) {
        self.li(17, 93); // a7 = SYS_exit
        self.li(10, code); // a0 = code
        self.ecall();
    }

    // ---- finalisation -------------------------------------------------------

    /// Resolve labels, encode everything and build the loadable [`Program`].
    pub fn finish(self) -> Program {
        assert!(self.region_stack.is_empty(), "unclosed region");
        let resolve = |label: Label, labels: &[Option<usize>]| -> u64 {
            let idx = labels[label.0].expect("unbound label");
            self.text_base + 4 * idx as u64
        };
        let mut text = Vec::with_capacity(self.items.len() * 4);
        for (i, item) in self.items.iter().enumerate() {
            let pc = self.text_base + 4 * i as u64;
            let inst = match item {
                Item::Fixed(inst) => *inst,
                Item::BranchTo { op, rs1, rs2, label } => {
                    let target = resolve(*label, &self.labels);
                    let offset = target.wrapping_sub(pc) as i64;
                    assert!(
                        (-4096..4096).contains(&offset),
                        "branch offset {offset} out of B-type range"
                    );
                    Inst::Branch { op: *op, rs1: *rs1, rs2: *rs2, offset }
                }
                Item::JalTo { rd, label } => {
                    let target = resolve(*label, &self.labels);
                    let offset = target.wrapping_sub(pc) as i64;
                    assert!(
                        (-(1 << 20)..(1 << 20)).contains(&offset),
                        "jal offset {offset} out of J-type range"
                    );
                    Inst::Jal { rd: *rd, offset }
                }
            };
            text.extend_from_slice(&encode(&inst).to_le_bytes());
        }

        // Merge duplicate region names: the same kernel may be emitted in
        // several ranges (e.g. once per timing iteration).
        let mut merged: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for (name, s, e) in &self.regions {
            let start = self.text_base + 4 * *s as u64;
            let end = self.text_base + 4 * *e as u64;
            if !merged.contains_key(name) {
                order.push(name.clone());
            }
            merged.entry(name.clone()).or_default().push((start, end));
        }
        let mut regions = Vec::new();
        for name in order {
            for (start, end) in &merged[&name] {
                regions.push(Region { name: name.clone(), start: *start, end: *end });
            }
        }

        let mut program = Program::new(IsaKind::RiscV);
        program.entry = self.text_base + 4 * self.entry_item as u64;
        program.sections.push(Section {
            addr: self.text_base,
            bytes: text,
            name: ".text".into(),
        });
        if !self.data.is_empty() {
            program.sections.push(Section {
                addr: self.data_base,
                bytes: self.data,
                name: ".data".into(),
            });
        }
        program.regions = regions;
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::RiscVExecutor;
    use simcore::{CpuState, EmulationCore};

    fn run(program: &Program) -> CpuState {
        let mut st = CpuState::new();
        program.load(&mut st).unwrap();
        let core = EmulationCore::new(RiscVExecutor::new());
        core.run(&mut st, &mut []).unwrap();
        st
    }

    #[test]
    fn trivial_exit_program() {
        let mut a = RvAsm::new(0x1_0000, 0x10_0000);
        a.exit(7);
        let st = run(&a.finish());
        assert_eq!(st.exited, Some(7));
    }

    #[test]
    fn loop_sums_array() {
        // Sum an 8-element f64 array with the paper's Listing-2 idiom:
        // pointer bump + fused compare-branch against an end pointer.
        let mut a = RvAsm::new(0x1_0000, 0x10_0000);
        let arr = a.data_f64_array(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let out = a.data_zero(8, 8);
        a.la(10, arr); // a0 = cursor
        a.la(11, arr + 64); // a1 = end
        a.la(12, out);
        a.push(Inst::FcvtFpFromInt { ty: IntTy::L, width: FpWidth::D, frd: 0, rs1: 0 }); // fa0 = 0.0
        let l = a.new_label();
        a.bind(l);
        a.fld(1, 10, 0);
        a.fadd_d(0, 0, 1);
        a.addi(10, 10, 8);
        a.bne(10, 11, l);
        a.fsd(0, 12, 0);
        a.exit(0);
        let st = run(&a.finish());
        assert_eq!(st.exited, Some(0));
        assert!(st.mem.read_f64(0x10_0000 + 64 + 8 - 8 + 8).is_ok());
        let sum_addr = 64 + 0x10_0000; // out follows the 64-byte array
        assert_eq!(st.mem.read_f64(sum_addr).unwrap(), 36.0);
    }

    #[test]
    fn li_covers_64_bit_constants() {
        for &v in &[
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            123_456,
            -123_456,
            i32::MAX as i64,
            i32::MIN as i64,
            0x1234_5678_9ABC_DEF0u64 as i64,
            i64::MAX,
            i64::MIN,
            -559_038_737,
        ] {
            let mut a = RvAsm::new(0x1_0000, 0x10_0000);
            let out = a.data_zero(8, 8);
            a.li(5, v);
            a.la(6, out);
            a.sd(5, 6, 0);
            a.exit(0);
            let st = run(&a.finish());
            assert_eq!(st.mem.read_u64(out).unwrap(), v as u64, "li {v}");
        }
    }

    #[test]
    fn forward_branches_resolve() {
        let mut a = RvAsm::new(0x1_0000, 0x10_0000);
        let skip = a.new_label();
        let out = a.data_zero(8, 8);
        a.li(5, 1);
        a.beq(0, 0, skip); // always taken, forward
        a.li(5, 99); // skipped
        a.bind(skip);
        a.la(6, out);
        a.sd(5, 6, 0);
        a.exit(0);
        let st = run(&a.finish());
        assert_eq!(st.mem.read_u64(out).unwrap(), 1);
    }

    #[test]
    fn regions_map_to_pc_ranges() {
        let mut a = RvAsm::new(0x1_0000, 0x10_0000);
        a.begin_region("init");
        a.li(5, 1);
        a.end_region();
        a.begin_region("body");
        a.add(6, 5, 5);
        a.end_region();
        a.exit(0);
        let p = a.finish();
        assert_eq!(p.regions.len(), 2);
        assert_eq!(p.region_of(0x1_0000).unwrap().name, "init");
        let body = p.regions.iter().find(|r| r.name == "body").unwrap();
        assert_eq!(body.end - body.start, 4);
    }

    #[test]
    fn write_syscall_from_guest() {
        let mut a = RvAsm::new(0x1_0000, 0x10_0000);
        let msg = a.data_bytes(b"hi\n");
        a.li(17, 64); // SYS_write
        a.li(10, 1); // fd
        a.la(11, msg);
        a.li(12, 3); // len
        a.ecall();
        a.exit(0);
        let st = run(&a.finish());
        assert_eq!(st.output_string(), "hi\n");
    }
}
