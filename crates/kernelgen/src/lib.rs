#![warn(missing_docs)]
//! Loop-kernel IR and code generators for RV64G and AArch64.
//!
//! This crate stands in for the paper's GCC 9.2 / GCC 12.2 cross-compilers:
//! each workload is expressed once in a small loop-nest IR and lowered to
//! real machine code for both ISAs. The two *compiler personalities*
//! ([`Personality::gcc92`], [`Personality::gcc122`]) switch exactly the
//! code-generation idioms the paper's §3.3 analysis documents:
//!
//! * AArch64 register-offset addressing (`ldr d1, [x22, x0, lsl #3]`) with a
//!   single shared index increment, versus RISC-V pointer bumping with one
//!   `add` per array (Listings 1-2);
//! * the AArch64 conditional-branch penalty: every loop back-edge needs an
//!   NZCV-setting instruction (`cmp`, or the GCC 9.2 `sub`+`subs` pair)
//!   while RISC-V fuses compare-and-branch into one `bne`;
//! * GCC 12.2's better loop-exit selection on AArch64 (`cmp` against a
//!   precomputed bound — the 12.5 % STREAM path-length reduction);
//! * GCC 9.2's weaker address folding (explicit `addi` for stencil offsets
//!   rather than folding them into the load/store immediate), which is why
//!   offset-heavy benchmarks (LBM) improve with the newer compiler while
//!   STREAM's RISC-V code is identical across versions;
//! * optional idioms the paper discusses but GCC does not emit (post-indexed
//!   addressing on AArch64), exposed for the ablation experiment E6.
//!
//! A reference interpreter ([`interp::interpret`]) executes the IR directly
//! on the host; workload tests assert that both ISA back-ends produce
//! bit-identical checksums to it.
//!
//! ```
//! use kernelgen::*;
//! use simcore::{CpuState, EmulationCore, IsaKind};
//!
//! // b[i] = 2 * a[i] over 16 elements.
//! let mut prog = KernelProgram::new("double");
//! let a = prog.array("a", 16, ArrayInit::Linear { start: 1.0, step: 1.0 });
//! let b = prog.array("b", 16, ArrayInit::Zero);
//! let unit = |arr| Access { arr, strides: vec![1], offset: 0 };
//! prog.kernel(Kernel {
//!     name: "double".into(),
//!     dims: vec![16],
//!     accs: vec![],
//!     body: vec![Stmt::Store {
//!         access: unit(b),
//!         value: Expr::mul(Expr::Const(2.0), Expr::Load(unit(a))),
//!     }],
//! });
//! prog.checksum_arrays.push(b);
//!
//! let expected = interpret(&prog, &Personality::gcc122()).checksum;
//! for isa in [IsaKind::RiscV, IsaKind::AArch64] {
//!     let compiled = compile(&prog, isa, &Personality::gcc122());
//!     let mut st = CpuState::new();
//!     compiled.program.load(&mut st).unwrap();
//!     match isa {
//!         IsaKind::RiscV => EmulationCore::new(isa_riscv::RiscVExecutor::new())
//!             .run(&mut st, &mut []).unwrap(),
//!         IsaKind::AArch64 => EmulationCore::new(isa_aarch64::AArch64Executor::new())
//!             .run(&mut st, &mut []).unwrap(),
//!     };
//!     let got = st.mem.read_f64(compiled.checksum_addr).unwrap();
//!     assert_eq!(got.to_bits(), expected.to_bits());
//! }
//! ```

pub mod arm;
pub mod interp;
pub mod ir;
pub mod personality;
pub mod riscv;

pub use interp::interpret;
pub use ir::*;
pub use personality::Personality;

use simcore::IsaKind;
use std::collections::HashMap;

/// A compiled workload image plus the metadata tests and analyses need.
pub struct Compiled {
    /// The loadable machine-code image.
    pub program: simcore::Program,
    /// Guest address of the 8-byte checksum slot written before exit.
    pub checksum_addr: u64,
    /// Guest address of each IR array.
    pub array_addrs: HashMap<String, u64>,
}

/// Compile an IR program for `isa` under the given compiler personality.
pub fn compile(prog: &KernelProgram, isa: IsaKind, p: &Personality) -> Compiled {
    match isa {
        IsaKind::RiscV => riscv::compile(prog, p),
        IsaKind::AArch64 => arm::compile(prog, p),
    }
}
pub(crate) mod util;
