//! Property tests: every encodable RV64G instruction round-trips through
//! the binary encoding, and the decoder never panics on arbitrary words.

use isa_riscv::*;
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn imm12() -> impl Strategy<Value = i64> {
    -2048i64..2048
}

fn branch_offset() -> impl Strategy<Value = i64> {
    (-2048i64..2048).prop_map(|v| v * 2)
}

fn jal_offset() -> impl Strategy<Value = i64> {
    (-(1i64 << 19)..(1 << 19)).prop_map(|v| v * 2)
}

fn upper_imm() -> impl Strategy<Value = i64> {
    (-(1i64 << 19)..(1 << 19)).prop_map(|v| v << 12)
}

fn fp_width() -> impl Strategy<Value = FpWidth> {
    prop_oneof![Just(FpWidth::S), Just(FpWidth::D)]
}

fn amo_width() -> impl Strategy<Value = AmoWidth> {
    prop_oneof![Just(AmoWidth::W), Just(AmoWidth::D)]
}

fn int_ty() -> impl Strategy<Value = IntTy> {
    prop_oneof![Just(IntTy::W), Just(IntTy::Wu), Just(IntTy::L), Just(IntTy::Lu)]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    let branch_op = prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Bltu),
        Just(BranchOp::Bgeu)
    ];
    let load_op = prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Ld),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
        Just(LoadOp::Lwu)
    ];
    let store_op = prop_oneof![
        Just(StoreOp::Sb),
        Just(StoreOp::Sh),
        Just(StoreOp::Sw),
        Just(StoreOp::Sd)
    ];
    let imm_op = prop_oneof![
        Just(ImmOp::Addi),
        Just(ImmOp::Slti),
        Just(ImmOp::Sltiu),
        Just(ImmOp::Xori),
        Just(ImmOp::Ori),
        Just(ImmOp::Andi)
    ];
    let shift_op = prop_oneof![Just(ImmOp::Slli), Just(ImmOp::Srli), Just(ImmOp::Srai)];
    let reg_op = prop_oneof![
        Just(RegOp::Add),
        Just(RegOp::Sub),
        Just(RegOp::Sll),
        Just(RegOp::Slt),
        Just(RegOp::Sltu),
        Just(RegOp::Xor),
        Just(RegOp::Srl),
        Just(RegOp::Sra),
        Just(RegOp::Or),
        Just(RegOp::And),
        Just(RegOp::Mul),
        Just(RegOp::Mulh),
        Just(RegOp::Mulhsu),
        Just(RegOp::Mulhu),
        Just(RegOp::Div),
        Just(RegOp::Divu),
        Just(RegOp::Rem),
        Just(RegOp::Remu)
    ];
    let reg_op32 = prop_oneof![
        Just(RegOp32::Addw),
        Just(RegOp32::Subw),
        Just(RegOp32::Sllw),
        Just(RegOp32::Srlw),
        Just(RegOp32::Sraw),
        Just(RegOp32::Mulw),
        Just(RegOp32::Divw),
        Just(RegOp32::Divuw),
        Just(RegOp32::Remw),
        Just(RegOp32::Remuw)
    ];
    let fp_op = prop_oneof![
        Just(FpOp::Fadd),
        Just(FpOp::Fsub),
        Just(FpOp::Fmul),
        Just(FpOp::Fdiv),
        Just(FpOp::Fsgnj),
        Just(FpOp::Fsgnjn),
        Just(FpOp::Fsgnjx),
        Just(FpOp::Fmin),
        Just(FpOp::Fmax)
    ];
    let fma_op = prop_oneof![
        Just(FmaOp::Fmadd),
        Just(FmaOp::Fmsub),
        Just(FmaOp::Fnmsub),
        Just(FmaOp::Fnmadd)
    ];
    let fcmp_op = prop_oneof![Just(FpCmpOp::Feq), Just(FpCmpOp::Flt), Just(FpCmpOp::Fle)];
    let amo_op = prop_oneof![
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu)
    ];

    prop_oneof![
        (reg(), upper_imm()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (reg(), upper_imm()).prop_map(|(rd, imm)| Inst::Auipc { rd, imm }),
        (reg(), jal_offset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (branch_op, reg(), reg(), branch_offset())
            .prop_map(|(op, rs1, rs2, offset)| Inst::Branch { op, rs1, rs2, offset }),
        (load_op, reg(), reg(), imm12())
            .prop_map(|(op, rd, rs1, offset)| Inst::Load { op, rd, rs1, offset }),
        (store_op, reg(), reg(), imm12())
            .prop_map(|(op, rs2, rs1, offset)| Inst::Store { op, rs2, rs1, offset }),
        (imm_op, reg(), reg(), imm12())
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (shift_op, reg(), reg(), 0i64..64)
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Inst::OpImm32 {
            op: ImmOp32::Addiw,
            rd,
            rs1,
            imm
        }),
        (
            prop_oneof![Just(ImmOp32::Slliw), Just(ImmOp32::Srliw), Just(ImmOp32::Sraiw)],
            reg(),
            reg(),
            0i64..32
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm32 { op, rd, rs1, imm }),
        (reg_op, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op { op, rd, rs1, rs2 }),
        (reg_op32, reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Op32 { op, rd, rs1, rs2 }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (amo_width(), reg(), reg()).prop_map(|(width, rd, rs1)| Inst::Lr { width, rd, rs1 }),
        (amo_width(), reg(), reg(), reg())
            .prop_map(|(width, rd, rs1, rs2)| Inst::Sc { width, rd, rs1, rs2 }),
        (amo_op, amo_width(), reg(), reg(), reg())
            .prop_map(|(op, width, rd, rs1, rs2)| Inst::Amo { op, width, rd, rs1, rs2 }),
        (fp_width(), reg(), reg(), imm12())
            .prop_map(|(width, frd, rs1, offset)| Inst::FpLoad { width, frd, rs1, offset }),
        (fp_width(), reg(), reg(), imm12())
            .prop_map(|(width, frs2, rs1, offset)| Inst::FpStore { width, frs2, rs1, offset }),
        (fp_op, fp_width(), reg(), reg(), reg())
            .prop_map(|(op, width, frd, frs1, frs2)| Inst::FpReg { op, width, frd, frs1, frs2 }),
        (fma_op, fp_width(), reg(), reg(), reg(), reg()).prop_map(
            |(op, width, frd, frs1, frs2, frs3)| Inst::FpFma { op, width, frd, frs1, frs2, frs3 }
        ),
        (fp_width(), reg(), reg()).prop_map(|(width, frd, frs1)| Inst::FpSqrt { width, frd, frs1 }),
        (fcmp_op, fp_width(), reg(), reg(), reg())
            .prop_map(|(op, width, rd, frs1, frs2)| Inst::FpCmp { op, width, rd, frs1, frs2 }),
        (int_ty(), fp_width(), reg(), reg())
            .prop_map(|(ty, width, rd, frs1)| Inst::FcvtIntFromFp { ty, width, rd, frs1 }),
        (int_ty(), fp_width(), reg(), reg())
            .prop_map(|(ty, width, frd, rs1)| Inst::FcvtFpFromInt { ty, width, frd, rs1 }),
        (any::<bool>(), reg(), reg()).prop_map(|(to_s, frd, frs1)| Inst::FcvtFpFp {
            to: if to_s { FpWidth::S } else { FpWidth::D },
            from: if to_s { FpWidth::D } else { FpWidth::S },
            frd,
            frs1
        }),
        (fp_width(), reg(), reg()).prop_map(|(width, rd, frs1)| Inst::FmvToInt { width, rd, frs1 }),
        (fp_width(), reg(), reg()).prop_map(|(width, frd, rs1)| Inst::FmvToFp { width, frd, rs1 }),
        (fp_width(), reg(), reg()).prop_map(|(width, rd, frs1)| Inst::Fclass { width, rd, frs1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn encode_decode_round_trip(inst in any_inst()) {
        let word = encode(&inst);
        let back = decode(word).expect("decoding an encoded instruction");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decoder_never_panics(word in any::<u32>()) {
        let _ = decode(word); // Ok or Err, but no panic
    }

    #[test]
    fn disassembler_never_panics(inst in any_inst()) {
        let text = disassemble(&inst);
        prop_assert!(!text.is_empty());
    }
}
