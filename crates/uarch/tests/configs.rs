//! The shipped SimEng-style config files must stay in sync with the
//! built-in models (the paper's "/configs directory" equivalent).

use std::path::Path;
use uarch::{A64fxLatency, LatencyTable, Tx2Latency};

fn configs_dir() -> std::path::PathBuf {
    // Workspace root relative to this crate.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../configs")
}

#[test]
fn tx2_config_matches_builtin() {
    let t = LatencyTable::from_json_file(&configs_dir().join("tx2.json")).unwrap();
    assert_eq!(t, Tx2Latency::table());
}

#[test]
fn a64fx_config_matches_builtin() {
    let t = LatencyTable::from_json_file(&configs_dir().join("a64fx.json")).unwrap();
    assert_eq!(t, A64fxLatency::table());
}

#[test]
fn missing_file_is_a_clean_error() {
    assert!(LatencyTable::from_json_file(Path::new("/nonexistent.json")).is_err());
}
